// Look-ahead WY-SBR (ctest label: lookahead): the overlapped schedule must
// produce the same banded output as the serial schedule, keep the sibling
// arena at steady state, attribute its stages on the context telemetry, and
// survive panel faults fired inside the overlap window.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <vector>

#include "src/common/context.hpp"
#include "src/common/fault.hpp"
#include "src/common/norms.hpp"
#include "src/common/recovery.hpp"
#include "src/common/thread_pool.hpp"
#include "src/evd/evd.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/sbr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using sbr::PanelKind;
using sbr::SbrOptions;

struct Shape {
  index_t n, b, nb;
};

// Deliberately awkward shapes: n not a multiple of nb, nb == b, odd n.
const Shape kShapes[] = {
    {96, 8, 32}, {130, 16, 32}, {120, 8, 64}, {64, 4, 16}, {100, 8, 8}, {57, 4, 12},
};

SbrOptions options_for(const Shape& s) {
  SbrOptions opt;
  opt.bandwidth = s.b;
  opt.big_block = s.nb;
  return opt;
}

TEST(Lookahead, BandMatchesSerialAcrossShapes) {
  for (const Shape& s : kShapes) {
    Matrix<float> a = test::random_symmetric<float>(s.n, 0xA11CEu + s.n);
    tc::Fp32Engine engine;
    Context ctx(engine);

    SbrOptions opt = options_for(s);
    opt.lookahead = false;
    auto off = sbr::sbr_wy(a.view(), ctx, opt);
    ASSERT_TRUE(off.ok());
    opt.lookahead = true;
    auto on = sbr::sbr_wy(a.view(), ctx, opt);
    ASSERT_TRUE(on.ok());

    // The split trailing update computes each column independently with the
    // same operands in the same k-order, and the prefactored panel sees
    // bitwise-identical input columns — so the bands agree far inside the
    // acceptance bound ||B_on - B_off||_F <= 1e-5 ||A||_F.
    const double na = frobenius_norm<float>(a.view());
    const double diff =
        frobenius_diff<float>(on->band.view(), off->band.view());
    EXPECT_LE(diff, 1e-5 * na) << "n=" << s.n << " b=" << s.b << " nb=" << s.nb;
    EXPECT_EQ(sbr::band_violation<float>(on->band.view(), s.b), 0.0);

    // The accumulated WY blocks are the same reflectors either way.
    ASSERT_EQ(on->blocks.size(), off->blocks.size());
  }
}

TEST(Lookahead, BandMatchesSerialWithBlockedQrPanels) {
  const Shape s{96, 8, 32};
  Matrix<float> a = test::random_symmetric<float>(s.n, 0xB10CD);
  tc::Fp32Engine engine;
  Context ctx(engine);
  SbrOptions opt = options_for(s);
  opt.panel = PanelKind::BlockedQr;
  opt.lookahead = false;
  auto off = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_TRUE(off.ok());
  opt.lookahead = true;
  auto on = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_TRUE(on.ok());
  EXPECT_LE(frobenius_diff<float>(on->band.view(), off->band.view()),
            1e-5 * frobenius_norm<float>(a.view()));
}

TEST(Lookahead, TensorCoreEnginePreservesBand) {
  const Shape s{120, 8, 64};
  Matrix<float> a = test::random_symmetric<float>(s.n, 0x7C7C);
  tc::TcEngine engine;
  Context ctx(engine);
  SbrOptions opt = options_for(s);
  opt.lookahead = false;
  auto off = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_TRUE(off.ok());
  opt.lookahead = true;
  auto on = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_TRUE(on.ok());
  EXPECT_LE(frobenius_diff<float>(on->band.view(), off->band.view()),
            1e-5 * frobenius_norm<float>(a.view()));
}

TEST(Lookahead, SingleBlockNeverOpensOverlapWindow) {
  // One big block exhausts the matrix: the overlap gate (next block viable)
  // must keep the schedule serial and record no overlap stages.
  Matrix<float> a = test::random_symmetric<float>(20, 0x51A6);
  tc::Fp32Engine engine;
  Context ctx(engine);
  SbrOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 16;
  opt.lookahead = true;
  auto res = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(ctx.telemetry().stage_seconds("sbr.wy.lookahead"), 0.0);
  EXPECT_EQ(ctx.telemetry().stage_seconds("sbr.wy.lookahead.panel"), 0.0);

  opt.lookahead = false;
  auto off = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_TRUE(off.ok());
  for (index_t j = 0; j < 20; ++j)
    for (index_t i = 0; i < 20; ++i) EXPECT_EQ(res->band(i, j), off->band(i, j));
}

TEST(Lookahead, StageAttributionLandsOnMainTelemetry) {
  const Shape s{130, 16, 32};  // several big blocks -> several overlap windows
  Matrix<float> a = test::random_symmetric<float>(s.n, 0x57A6E);
  tc::Fp32Engine engine;
  Context ctx(engine);
  SbrOptions opt = options_for(s);
  opt.lookahead = true;
  ASSERT_TRUE(sbr::sbr_wy(a.view(), ctx, opt).ok());

  // absorb_sibling_telemetry folded the caller-side panel stage (recorded on
  // the sibling) back into the main sink, so all three stages are visible
  // here, with matching window/panel call counts.
  const Telemetry& t = ctx.telemetry();
  long window_calls = 0, panel_calls = 0, trailing_calls = 0;
  for (const Telemetry::StageStat& st : t.stages()) {
    if (st.name == "sbr.wy.lookahead") window_calls = st.calls;
    if (st.name == "sbr.wy.lookahead.panel") panel_calls = st.calls;
    if (st.name == "sbr.wy.trailing") trailing_calls = st.calls;
  }
  EXPECT_GT(window_calls, 0);
  EXPECT_EQ(window_calls, panel_calls);
  EXPECT_EQ(window_calls, trailing_calls);
  EXPECT_GT(t.stage_seconds("sbr.wy"), 0.0);

  // The sibling was drained by the absorb: a second run must not double-
  // count stale sibling stages.
  ASSERT_TRUE(ctx.has_lookahead_sibling());
  EXPECT_TRUE(ctx.lookahead_sibling().telemetry().stages().empty());
}

TEST(Lookahead, SiblingArenaReachesSteadyState) {
  const Shape s{130, 16, 32};
  Matrix<float> a = test::random_symmetric<float>(s.n, 0xD00D);
  tc::Fp32Engine engine;
  Context ctx(engine);
  SbrOptions opt = options_for(s);
  opt.lookahead = true;
  ASSERT_TRUE(sbr::sbr_wy(a.view(), ctx, opt).ok());
  ASSERT_TRUE(ctx.has_lookahead_sibling());
  Workspace& sib = ctx.lookahead_sibling().workspace();
  const long spills_after_first = sib.spill_count();
  const std::size_t blocks_after_first = sib.block_count();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(sbr::sbr_wy(a.view(), ctx, opt).ok());
  EXPECT_EQ(sib.spill_count(), spills_after_first);
  EXPECT_EQ(sib.block_count(), blocks_after_first);
  EXPECT_EQ(sib.bytes_in_use(), 0u);  // the cross-block scope was released
  // lookahead_workspace_query must genuinely bound the sibling's peak.
  EXPECT_LE(sib.high_water_mark(), sbr::lookahead_workspace_query(s.n, opt));
}

TEST(Lookahead, PanelFaultInsideOverlapWindowIsRecovered) {
  // Poison the TSQR output of a panel that is factored during the overlap
  // window; the TSQR -> BlockedQr fallback must fire on the caller thread
  // and the note must reach the ambient recovery scope.
  const Shape s{96, 8, 32};
  Matrix<float> a = test::random_symmetric<float>(s.n, 0xFA17);
  tc::Fp32Engine engine;
  Context ctx(engine);
  SbrOptions opt = options_for(s);
  opt.lookahead = true;

  recovery::Scope rscope;
  fault::arm(fault::Site::PanelNan, -1);  // every panel, overlapped ones included
  auto res = sbr::sbr_wy(a.view(), ctx, opt);
  fault::disarm_all();
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(sbr::band_violation<float>(res->band.view(), s.b), 0.0);
  bool noted = false;
  for (const RecoveryEvent& ev : rscope.events())
    if (ev.site == "sbr.panel") noted = true;
  EXPECT_TRUE(noted);
}

TEST(Lookahead, EvdPlumbingMatchesSerialEigenvalues) {
  const index_t n = 96;
  Matrix<float> a = test::random_symmetric<float>(n, 0xE7D);
  tc::Fp32Engine engine;
  Context c_off(engine), c_on(engine);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  opt.lookahead = false;
  auto off = evd::solve(a.view(), c_off, opt);
  ASSERT_TRUE(off.ok());
  opt.lookahead = true;
  auto on = evd::solve(a.view(), c_on, opt);
  ASSERT_TRUE(on.ok());
  ASSERT_EQ(on->eigenvalues.size(), off->eigenvalues.size());
  for (std::size_t i = 0; i < on->eigenvalues.size(); ++i)
    EXPECT_NEAR(on->eigenvalues[i], off->eigenvalues[i],
                1e-5f * std::max(1.0f, std::abs(off->eigenvalues[i])));
  EXPECT_LE(evd::eigenpair_residual(a.view(), on->eigenvalues,
                                    ConstMatrixView<float>(on->vectors.view())),
            1e-4);
}

// ---------------------------------------------------------------------------
// Infrastructure the look-ahead schedule rides on.
// ---------------------------------------------------------------------------

TEST(RunPair, RunsBothTasksAndJoins) {
  ThreadPool pool(2);
  int pooled = 0, inlined = 0;
  pool.run_pair([&] { pooled = 1; }, [&] { inlined = 1; });
  EXPECT_EQ(pooled, 1);  // join guarantees both completed before return
  EXPECT_EQ(inlined, 1);
}

TEST(RunPair, WorksOnSingleWorkerPool) {
  // With one worker the pooled half queues behind nothing and the caller's
  // inline half runs concurrently (or first); either way run_pair returns
  // only after both.
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 8; ++i) {
    bool a = false, b = false;
    pool.run_pair([&] { std::lock_guard<std::mutex> l(m); a = true; },
                  [&] { std::lock_guard<std::mutex> l(m); b = true; });
    ASSERT_TRUE(a && b);
  }
}

TEST(RunPair, OverlapPoolIsSharedAndReentrantFromCallers) {
  ThreadPool& pool = overlap_pool();
  EXPECT_GE(pool.size(), 1);
  std::atomic<int> done{0};
  // Concurrent run_pair calls from several threads: tasks queue, never
  // deadlock (callers do not run on the overlap pool itself).
  ThreadPool callers(4);
  callers.parallel_for(8, [&](int, long) {
    pool.run_pair([&] { done.fetch_add(1); }, [&] { done.fetch_add(1); });
  });
  EXPECT_EQ(done.load(), 16);
}

TEST(CompatContext, CachedPerThreadPerEngine) {
  tc::Fp32Engine e1, e2;
  Context& c1 = compat_context(e1);
  Context& c1_again = compat_context(e1);
  Context& c2 = compat_context(e2);
  EXPECT_EQ(&c1, &c1_again);  // same engine -> same scratch context
  EXPECT_NE(&c1, &c2);
  EXPECT_EQ(&c1.engine(), static_cast<tc::GemmEngine*>(&e1));
}

TEST(CompatContext, DeprecatedOverloadKeepsArenaWarm) {
  tc::Fp32Engine engine;
  Matrix<float> a = test::random_symmetric<float>(64, 0xC0FFEE);
  SbrOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 16;
  ASSERT_TRUE(sbr::sbr_wy(a.view(), engine, opt).ok());  // deprecated overload
  Workspace& ws = compat_context(engine).workspace();
  const long spills = ws.spill_count();
  const std::size_t blocks = ws.block_count();
  ASSERT_TRUE(sbr::sbr_wy(a.view(), engine, opt).ok());
  EXPECT_EQ(ws.spill_count(), spills);  // second call re-used the warm arena
  EXPECT_EQ(ws.block_count(), blocks);
}

}  // namespace
}  // namespace tcevd
