// Non-pivoted LU.
#include <gtest/gtest.h>

#include "src/blas/blas.hpp"
#include "src/lapack/lu.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

Matrix<double> diagonally_dominant(index_t n, std::uint64_t seed) {
  auto a = test::random_matrix(n, n, seed);
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n) + 1.0;
  return a;
}

TEST(LuNopiv, ReconstructsSquare) {
  const index_t n = 24;
  auto a = diagonally_dominant(n, 1);
  auto f = a;
  EXPECT_EQ(lapack::lu_nopiv(f.view()), -1);

  Matrix<double> l(n, n), u(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      l(i, j) = (i > j) ? f(i, j) : (i == j ? 1.0 : 0.0);
      u(i, j) = (i <= j) ? f(i, j) : 0.0;
    }
  Matrix<double> lu(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0, l.view(), u.view(), 0.0, lu.view());
  EXPECT_LT(test::rel_diff<double>(lu.view(), a.view()), 1e-12);
}

TEST(LuNopiv, ReconstructsRectangularTall) {
  const index_t m = 30, n = 12;
  Rng rng(2);
  Matrix<double> a(m, n);
  fill_normal(rng, a.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += 20.0;
  auto f = a;
  EXPECT_EQ(lapack::lu_nopiv(f.view()), -1);

  Matrix<double> l(m, n), u(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) l(i, j) = (i > j) ? f(i, j) : (i == j ? 1.0 : 0.0);
    for (index_t i = 0; i <= j; ++i) u(i, j) = f(i, j);
  }
  Matrix<double> lu(m, n);
  blas::gemm(Trans::No, Trans::No, 1.0, l.view(), u.view(), 0.0, lu.view());
  EXPECT_LT(test::rel_diff<double>(lu.view(), a.view()), 1e-12);
}

TEST(LuNopiv, ReportsZeroPivot) {
  Matrix<double> a(3, 3);
  a(0, 0) = 0.0;  // immediate breakdown
  a(1, 1) = 1.0;
  a(2, 2) = 1.0;
  EXPECT_EQ(lapack::lu_nopiv(a.view()), 0);
}

TEST(LuNopiv, ReportsLatePivotBreakdown) {
  // [1 1; 1 1] -> after one step the (1,1) entry becomes 0.
  Matrix<double> a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  EXPECT_EQ(lapack::lu_nopiv(a.view()), 1);
}

TEST(LuNopiv, SolveViaTrsvMatches) {
  const index_t n = 16;
  auto a = diagonally_dominant(n, 3);
  Rng rng(4);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.normal();
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  blas::gemv(Trans::No, 1.0, a.view(), x_true.data(), 1, 0.0, b.data(), 1);

  auto f = a;
  ASSERT_EQ(lapack::lu_nopiv(f.view()), -1);
  // Solve L y = b then U x = y.
  blas::trsv(blas::Uplo::Lower, Trans::No, blas::Diag::Unit, f.view(), b.data(), 1);
  blas::trsv(blas::Uplo::Upper, Trans::No, blas::Diag::NonUnit, f.view(), b.data(), 1);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-10);
}

}  // namespace
}  // namespace tcevd
