// Matrix generation: spectra, symmetry, condition numbers, names.
#include <gtest/gtest.h>

#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/matgen/matgen.hpp"
#include "src/sbr/band.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using matgen::MatrixType;

TEST(Matgen, NamesMatchPaperTables) {
  EXPECT_EQ(matgen::matrix_type_name(MatrixType::Normal, 1), "Normal");
  EXPECT_EQ(matgen::matrix_type_name(MatrixType::Uniform, 1), "Uniform");
  EXPECT_EQ(matgen::matrix_type_name(MatrixType::Cluster0, 1e5), "SVD_Cluster0 1e5");
  EXPECT_EQ(matgen::matrix_type_name(MatrixType::Arith, 1e3), "SVD_Arith 1e3");
  EXPECT_EQ(matgen::matrix_type_name(MatrixType::Geo, 1e1), "SVD_Geo 1e1");
}

TEST(Matgen, PaperRowsCoverTable) {
  auto rows = matgen::paper_accuracy_rows();
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.front().type, MatrixType::Normal);
  EXPECT_EQ(rows.back().type, MatrixType::Geo);
  EXPECT_EQ(rows.back().cond, 1e5);
}

TEST(Matgen, AllTypesSymmetric) {
  Rng rng(1);
  for (auto type : {MatrixType::Normal, MatrixType::Uniform, MatrixType::Cluster0,
                    MatrixType::Cluster1, MatrixType::Arith, MatrixType::Geo}) {
    auto a = matgen::generate(type, 40, 1e3, rng);
    EXPECT_EQ(sbr::symmetry_violation<double>(a.view()), 0.0);
  }
}

TEST(Matgen, RandomOrthogonalIsOrthogonal) {
  Rng rng(2);
  auto q = matgen::random_orthogonal(50, rng);
  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-12 * 50);
}

class SpectrumTest : public ::testing::TestWithParam<MatrixType> {};

TEST_P(SpectrumTest, GeneratedMatrixHasPrescribedSpectrum) {
  const auto type = GetParam();
  const index_t n = 60;
  const double cond = 1e4;
  Rng rng(3);
  auto a = matgen::generate(type, n, cond, rng);
  auto want = matgen::prescribed_spectrum(type, n, cond);
  auto got = *evd::reference_eigenvalues(a.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(got[static_cast<std::size_t>(i)], want[static_cast<std::size_t>(i)], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Types, SpectrumTest,
                         ::testing::Values(MatrixType::Cluster0, MatrixType::Cluster1,
                                           MatrixType::Arith, MatrixType::Geo));

TEST(Matgen, ConditionNumberRealized) {
  const index_t n = 30;
  Rng rng(4);
  for (double cond : {1e1, 1e3, 1e5}) {
    auto a = matgen::generate(MatrixType::Geo, n, cond, rng);
    auto eigs = *evd::reference_eigenvalues(a.view());
    EXPECT_NEAR(eigs.back() / eigs.front(), cond, cond * 1e-6);
  }
}

TEST(Matgen, SpectrumShapes) {
  auto c0 = matgen::prescribed_spectrum(MatrixType::Cluster0, 5, 100);
  EXPECT_DOUBLE_EQ(c0[4], 1.0);
  EXPECT_DOUBLE_EQ(c0[0], 0.01);
  EXPECT_DOUBLE_EQ(c0[1], 0.01);  // clustered at the bottom

  auto c1 = matgen::prescribed_spectrum(MatrixType::Cluster1, 5, 100);
  EXPECT_DOUBLE_EQ(c1[0], 0.01);
  EXPECT_DOUBLE_EQ(c1[1], 1.0);  // clustered at the top

  auto ar = matgen::prescribed_spectrum(MatrixType::Arith, 5, 100);
  const double gap = ar[1] - ar[0];
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(ar[i + 1] - ar[i], gap, 1e-12);

  auto ge = matgen::prescribed_spectrum(MatrixType::Geo, 5, 100);
  const double ratio = ge[1] / ge[0];
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(ge[i + 1] / ge[i], ratio, 1e-9);
}

TEST(Matgen, DeterministicGivenRngState) {
  Rng r1(42), r2(42);
  auto a = matgen::generate(MatrixType::Arith, 20, 1e2, r1);
  auto b = matgen::generate(MatrixType::Arith, 20, 1e2, r2);
  EXPECT_EQ(test::rel_diff<double>(a.view(), b.view()), 0.0);
}

TEST(Matgen, FloatVariantMatchesDouble) {
  Rng r1(7), r2(7);
  auto ad = matgen::generate(MatrixType::Normal, 15, 1.0, r1);
  auto af = matgen::generate_f(MatrixType::Normal, 15, 1.0, r2);
  for (index_t j = 0; j < 15; ++j)
    for (index_t i = 0; i < 15; ++i)
      EXPECT_EQ(af(i, j), static_cast<float>(ad(i, j)));
}

}  // namespace
}  // namespace tcevd
