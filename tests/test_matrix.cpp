// Matrix container / view semantics.
#include <gtest/gtest.h>

#include "src/common/matrix.hpp"
#include "src/common/norms.hpp"

namespace tcevd {
namespace {

TEST(Matrix, ColumnMajorLayout) {
  Matrix<double> a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[3], 4);  // next column starts at ld = 3
}

TEST(Matrix, ZeroInitialized) {
  Matrix<float> a(4, 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 4; ++i) EXPECT_EQ(a(i, j), 0.0f);
}

TEST(Matrix, EmptyDimensionsAllowed) {
  Matrix<double> a(0, 0);
  EXPECT_EQ(a.rows(), 0);
  Matrix<double> b(5, 0);
  EXPECT_EQ(b.cols(), 0);
  Matrix<double> c(0, 5);
  EXPECT_EQ(c.view().sub(0, 2, 0, 2).cols(), 2);
}

TEST(MatrixView, SubviewSharesStorage) {
  Matrix<double> a(4, 4);
  auto s = a.sub(1, 1, 2, 2);
  s(0, 0) = 42.0;
  EXPECT_EQ(a(1, 1), 42.0);
  EXPECT_EQ(s.ld(), a.ld());
}

TEST(MatrixView, NestedSubviews) {
  Matrix<double> a(8, 8);
  a(3, 4) = 7.0;
  auto s1 = a.sub(1, 1, 6, 6);
  auto s2 = s1.sub(2, 3, 2, 2);
  EXPECT_EQ(s2(0, 0), 7.0);
}

TEST(MatrixView, ColAccess) {
  Matrix<double> a(3, 3);
  a(2, 1) = 5.0;
  auto c = a.view().col(1);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 1);
  EXPECT_EQ(c(2, 0), 5.0);
}

TEST(MatrixHelpers, SetIdentityRectangular) {
  Matrix<double> a(4, 2);
  set_identity(a.view());
  EXPECT_EQ(a(0, 0), 1.0);
  EXPECT_EQ(a(1, 1), 1.0);
  EXPECT_EQ(a(1, 0), 0.0);
  EXPECT_EQ(a(3, 1), 0.0);
}

TEST(MatrixHelpers, CopyBetweenDifferentStrides) {
  Matrix<double> a(5, 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 5; ++i) a(i, j) = static_cast<double>(i * 10 + j);
  Matrix<double> b(3, 3);
  copy_matrix<double>(a.sub(1, 1, 3, 3), b.view());
  EXPECT_EQ(b(0, 0), 11.0);
  EXPECT_EQ(b(2, 2), 33.0);
}

TEST(MatrixHelpers, SymmetrizeFromLower) {
  Matrix<double> a(3, 3);
  a(1, 0) = 2.0;
  a(2, 0) = 3.0;
  a(2, 1) = 4.0;
  a(0, 1) = -99.0;  // garbage in the upper triangle
  symmetrize_from_lower(a.view());
  EXPECT_EQ(a(0, 1), 2.0);
  EXPECT_EQ(a(0, 2), 3.0);
  EXPECT_EQ(a(1, 2), 4.0);
}

TEST(MatrixHelpers, MakeSymmetricAverages) {
  Matrix<double> a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 3.0;
  make_symmetric(a.view());
  EXPECT_EQ(a(0, 1), 2.0);
  EXPECT_EQ(a(1, 0), 2.0);
}

TEST(MatrixHelpers, ConvertNarrows) {
  Matrix<double> a(2, 2);
  a(0, 0) = 1.5;
  Matrix<float> b(2, 2);
  convert_matrix<double, float>(a.view(), b.view());
  EXPECT_EQ(b(0, 0), 1.5f);
}

TEST(Norms, FrobeniusKnownValue) {
  Matrix<double> a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(frobenius_norm<double>(a.view()), 5.0);
}

TEST(Norms, OrthogonalityOfIdentity) {
  Matrix<double> q(6, 6);
  set_identity(q.view());
  EXPECT_NEAR(orthogonality_residual<double>(q.view()), 0.0, 1e-15);
}

TEST(Norms, EigenvalueErrorZeroForIdentical) {
  std::vector<double> d{1.0, 2.0, 3.0};
  EXPECT_EQ(eigenvalue_error(d.data(), d.data(), 3), 0.0);
}

TEST(Norms, MaxAbs) {
  Matrix<float> a(2, 3);
  a(1, 2) = -7.5f;
  EXPECT_DOUBLE_EQ(max_abs<float>(a.view()), 7.5);
}

}  // namespace
}  // namespace tcevd
