// Partial eigensolve: selected eigenvalues + vectors by bisection + inverse
// iteration through the full two-stage pipeline.
#include <gtest/gtest.h>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/partial.hpp"
#include "src/matgen/matgen.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

TEST(Partial, SelectedValuesMatchFullSolve) {
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 1);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;

  auto full = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(full.converged);
  auto part = *evd::solve_selected(a.view(), ctx, opt, 10, 19);
  ASSERT_TRUE(part.converged);
  ASSERT_EQ(part.eigenvalues.size(), 10u);
  for (index_t i = 0; i < 10; ++i)
    EXPECT_NEAR(part.eigenvalues[static_cast<std::size_t>(i)],
                full.eigenvalues[static_cast<std::size_t>(10 + i)], 2e-4);
}

TEST(Partial, VectorsAreEigenvectorsOfA) {
  const index_t n = 80;
  Rng rng(2);
  auto a = matgen::generate_f(matgen::MatrixType::Geo, n, 1e2, rng);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;

  auto part = *evd::solve_selected(a.view(), ctx, opt, n - 5, n - 1, /*vectors=*/true);
  ASSERT_TRUE(part.converged);
  ASSERT_EQ(part.vectors.cols(), 5);
  EXPECT_LT(evd::eigenpair_residual(a.view(), part.eigenvalues, part.vectors.view()), 1e-4);
  EXPECT_LT(orthogonality_residual<float>(part.vectors.view()), 1e-3);
}

TEST(Partial, ExtremeEndsAndSinglePair) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 3);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 16;

  auto full = *evd::solve(a.view(), ctx, opt);
  auto lo = *evd::solve_selected(a.view(), ctx, opt, 0, 0, true);
  auto hi = *evd::solve_selected(a.view(), ctx, opt, n - 1, n - 1, true);
  EXPECT_NEAR(lo.eigenvalues[0], full.eigenvalues.front(), 2e-4);
  EXPECT_NEAR(hi.eigenvalues[0], full.eigenvalues.back(), 2e-4);
  EXPECT_LT(evd::eigenpair_residual(a.view(), lo.eigenvalues, lo.vectors.view()), 1e-4);
}

TEST(Partial, TensorCoreEngineWorks) {
  const index_t n = 96;
  Rng rng(4);
  auto a = matgen::generate_f(matgen::MatrixType::Arith, n, 1e2, rng);
  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;

  auto part = *evd::solve_selected(a.view(), ctx, opt, n - 3, n - 1, true);
  ASSERT_TRUE(part.converged);
  // TC numerics: residual bounded by TC eps.
  EXPECT_LT(evd::eigenpair_residual(a.view(), part.eigenvalues, part.vectors.view()), 1e-2);
}

TEST(Partial, OneStageReductionPath) {
  const index_t n = 48;
  auto a = test::random_symmetric<float>(n, 5);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.reduction = evd::Reduction::OneStage;
  auto part = *evd::solve_selected(a.view(), ctx, opt, 0, 4, true);
  ASSERT_TRUE(part.converged);
  EXPECT_LT(evd::eigenpair_residual(a.view(), part.eigenvalues, part.vectors.view()), 1e-4);
}

TEST(Partial, ZyReductionPath) {
  const index_t n = 48;
  auto a = test::random_symmetric<float>(n, 6);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.reduction = evd::Reduction::TwoStageZy;
  opt.bandwidth = 8;
  auto part = *evd::solve_selected(a.view(), ctx, opt, 20, 24, true);
  ASSERT_TRUE(part.converged);
  EXPECT_LT(evd::eigenpair_residual(a.view(), part.eigenvalues, part.vectors.view()), 1e-4);
}

}  // namespace
}  // namespace tcevd
