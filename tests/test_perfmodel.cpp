// Performance model and shape tracers.
//
// The load-bearing tests here are the trace-vs-implementation equalities:
// the paper-scale figures are generated from the traces, so each trace must
// match the real algorithm's recorded GEMM stream *call for call*.
#include <gtest/gtest.h>

#include "src/common/context.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"
#include "src/sbr/sbr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using perf::Device;
using tc::GemmShape;

void expect_same_shapes(const std::vector<GemmShape>& traced,
                        const std::vector<GemmShape>& recorded) {
  ASSERT_EQ(traced.size(), recorded.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].m, recorded[i].m) << "call " << i;
    EXPECT_EQ(traced[i].n, recorded[i].n) << "call " << i;
    EXPECT_EQ(traced[i].k, recorded[i].k) << "call " << i;
  }
}

class TraceConsistencyTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(TraceConsistencyTest, WyTraceMatchesImplementation) {
  const auto [n, b, nb] = GetParam();
  auto a = test::random_symmetric<float>(n, 900 + n);
  tc::Fp32Engine eng;
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  sbr::SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = nb;
  opt.wy_cache_oa_product = false;  // literal Algorithm 1
  (void)sbr::sbr_wy(a.view(), ctx, opt);
  expect_same_shapes(perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/false),
                     ctx.telemetry().recorded());
}

TEST_P(TraceConsistencyTest, ZyTraceMatchesImplementation) {
  const auto [n, b, nb] = GetParam();
  auto a = test::random_symmetric<float>(n, 901 + n);
  tc::Fp32Engine eng;
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  sbr::SbrOptions opt;
  opt.bandwidth = b;
  (void)sbr::sbr_zy(a.view(), ctx, opt);
  expect_same_shapes(perf::trace_sbr_zy(n, b), ctx.telemetry().recorded());
}

TEST_P(TraceConsistencyTest, FormWTraceMatchesImplementation) {
  const auto [n, b, nb] = GetParam();
  auto a = test::random_symmetric<float>(n, 902 + n);
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = nb;
  auto res = *sbr::sbr_wy(a.view(), ctx, opt);
  if (res.blocks.empty()) GTEST_SKIP();
  ctx.telemetry().set_recording(true);
  (void)sbr::form_q(res.blocks, n, ctx);
  expect_same_shapes(perf::trace_formw(n, b, nb), ctx.telemetry().recorded());
}

INSTANTIATE_TEST_SUITE_P(Shapes, TraceConsistencyTest,
                         ::testing::Values(std::make_tuple<index_t, index_t, index_t>(96, 8, 32),
                                           std::make_tuple<index_t, index_t, index_t>(130, 16, 32),
                                           std::make_tuple<index_t, index_t, index_t>(64, 4, 16),
                                           std::make_tuple<index_t, index_t, index_t>(100, 8, 8),
                                           std::make_tuple<index_t, index_t, index_t>(90, 16, 48),
                                           std::make_tuple<index_t, index_t, index_t>(120, 8, 64)));

TEST_P(TraceConsistencyTest, WyCachedTraceMatchesImplementation) {
  const auto [n, b, nb] = GetParam();
  auto a = test::random_symmetric<float>(n, 904 + n);
  tc::Fp32Engine eng;
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  sbr::SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = nb;
  opt.wy_cache_oa_product = true;
  (void)sbr::sbr_wy(a.view(), ctx, opt);
  expect_same_shapes(perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/true),
                     ctx.telemetry().recorded());
}

TEST(TraceConsistency, CachedVariantDoesStrictlyFewerFlops) {
  const double lit = perf::total_flops(perf::trace_sbr_wy(2048, 64, 512, false));
  const double cached = perf::total_flops(perf::trace_sbr_wy(2048, 64, 512, true));
  EXPECT_LT(cached, lit);
}

TEST(TraceConsistency, ZyBacktransformMatchesImplementation) {
  const index_t n = 96, b = 8;
  auto a = test::random_symmetric<float>(n, 903);
  tc::Fp32Engine eng;
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  sbr::SbrOptions opt;
  opt.bandwidth = b;
  opt.accumulate_q = true;
  (void)sbr::sbr_zy(a.view(), ctx, opt);
  // Recorded = ZY trailing updates + back-transform GEMMs interleaved; the
  // back-transform shapes must appear as the (4th, 5th) of every 7 calls.
  auto zy = perf::trace_sbr_zy(n, b);
  auto bt = perf::trace_zy_backtransform(n, b);
  ASSERT_EQ(ctx.telemetry().recorded().size(), zy.size() + bt.size());
  std::vector<GemmShape> interleaved;
  std::size_t iz = 0, ib = 0;
  while (iz < zy.size()) {
    for (int c = 0; c < 5; ++c) interleaved.push_back(zy[iz++]);
    interleaved.push_back(bt[ib++]);
    interleaved.push_back(bt[ib++]);
  }
  expect_same_shapes(interleaved, ctx.telemetry().recorded());
}

TEST(A100Model, MatchesCalibrationPoints) {
  // At the calibration geometry the model must reproduce Table 1 exactly.
  EXPECT_NEAR(perf::gemm_tflops(Device::TensorCore, 32768, 32, 32768), 6.28, 1e-9);
  EXPECT_NEAR(perf::gemm_tflops(Device::TensorCore, 32768, 1024, 32768), 85.73, 1e-9);
  EXPECT_NEAR(perf::gemm_tflops(Device::TensorCore, 32768, 32768, 256), 97.41, 1e-9);
  EXPECT_NEAR(perf::gemm_tflops(Device::Sgemm, 32768, 512, 32768), 10.36, 1e-9);
  EXPECT_NEAR(perf::gemm_tflops(Device::Sgemm, 32768, 32768, 4096), 14.33, 1e-9);
}

TEST(A100Model, TcOuterFasterThanSkinnyAtSmallK) {
  // Table 1's key asymmetry: outer products beat skinny-output GEMMs on TC.
  EXPECT_GT(perf::gemm_tflops(Device::TensorCore, 32768, 32768, 128),
            perf::gemm_tflops(Device::TensorCore, 32768, 128, 32768));
}

TEST(A100Model, SgemmInsensitiveToShape) {
  const double a = perf::gemm_tflops(Device::Sgemm, 32768, 64, 32768);
  const double b = perf::gemm_tflops(Device::Sgemm, 32768, 2048, 32768);
  EXPECT_LT(b / a, 1.5);  // paper: "SGEMM is much more stable as k increases"
}

TEST(A100Model, TcGrowsStronglyWithK) {
  const double a = perf::gemm_tflops(Device::TensorCore, 32768, 32, 32768);
  const double b = perf::gemm_tflops(Device::TensorCore, 32768, 4096, 32768);
  EXPECT_GT(b / a, 10.0);
}

TEST(A100Model, TimeIncludesLaunchOverhead) {
  // A zero-work GEMM still costs one launch.
  EXPECT_GE(perf::gemm_time_s(Device::TensorCore, 1, 1, 1), perf::kLaunchOverheadS);
}

TEST(A100Model, StreamAggregation) {
  std::vector<GemmShape> s{{100, 100, 100}, {200, 200, 200}};
  EXPECT_DOUBLE_EQ(perf::total_flops(s), 2e6 + 16e6);
  EXPECT_GT(perf::total_time_s(Device::TensorCore, s), 2 * perf::kLaunchOverheadS);
  EXPECT_GT(perf::stream_tflops(Device::TensorCore, s), 0.0);
}

TEST(A100Model, PanelModelTsqrFasterAndScalesWithM) {
  EXPECT_LT(perf::panel_time_s(32768, 128, true), perf::panel_time_s(32768, 128, false));
  EXPECT_GT(perf::panel_time_s(32768, 128, true), perf::panel_time_s(8192, 128, true));
  EXPECT_GT(perf::panel_flops(1000, 32), 0.0);
}

TEST(ShapeHistogram, BinsByPowerOfTwoAndConservesFlops) {
  std::vector<GemmShape> s{{100, 100, 8},    // min 8 -> bin 8
                           {64, 64, 9},      // min 9 -> bin 8
                           {1000, 16, 1000}, // min 16 -> bin 16
                           {5, 5, 5}};       // min 5 -> bin 4
  auto bins = perf::shape_histogram(s);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].min_dim_lo, 4);
  EXPECT_EQ(bins[1].min_dim_lo, 8);
  EXPECT_EQ(bins[1].calls, 2);
  EXPECT_EQ(bins[2].min_dim_lo, 16);
  double total = 0.0;
  for (const auto& b : bins) total += b.flops;
  EXPECT_DOUBLE_EQ(total, perf::total_flops(s));
}

TEST(ShapeHistogram, WyMassSitsAtNbZyAtB) {
  // Quantitative form of the paper's Section 4 claim at paper scale.
  const index_t n = 32768, b = 128, nb = 1024;
  auto wy = perf::trace_sbr_wy(n, b, nb, true);
  auto zy = perf::trace_sbr_zy(n, b);
  EXPECT_GT(perf::flop_weighted_min_dim(wy), 4.0 * b);
  EXPECT_NEAR(perf::flop_weighted_min_dim(zy), static_cast<double>(b), 1.0);
}

TEST(ShapeTrace, WyFlopsExceedZyAndGrowWithNb) {
  // Paper Table 2's qualitative content at a reduced scale.
  const index_t n = 2048, b = 64;
  const double zy = perf::total_flops(perf::trace_sbr_zy(n, b));
  const double wy_small = perf::total_flops(perf::trace_sbr_wy(n, b, 64));
  const double wy_big = perf::total_flops(perf::trace_sbr_wy(n, b, 512));
  EXPECT_GT(wy_small, 0.9 * zy);
  EXPECT_GT(wy_big, wy_small);
}

TEST(ShapeTrace, PanelsCoverEveryBlock) {
  auto panels = perf::trace_panels(100, 8);
  // Panels at i = 0, 8, ..., while n - i - b >= 2 -> i <= 90 -> 12 panels.
  EXPECT_EQ(panels.size(), 12u);
  EXPECT_EQ(panels.front().m, 92);
  EXPECT_EQ(panels.back().m, 100 - 88 - 8);
}

}  // namespace
}  // namespace tcevd
