// Property-based sweeps: randomized invariants that must hold across sizes,
// seeds, bandwidths, engines, and matrix classes. Each TEST_P case draws
// several random instances; failures print the seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/common/norms.hpp"
#include "src/evd/batch.hpp"
#include "src/evd/evd.hpp"
#include "src/matgen/matgen.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/sbr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

// ---------------------------------------------------------------------------
// Property: eigenvalue sum equals the trace, product-free invariants.
// ---------------------------------------------------------------------------

class TraceInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceInvariantTest, EigenvalueSumEqualsTrace) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const index_t n = 32 + static_cast<index_t>(rng.bounded(96));
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());

  double trace = 0.0;
  for (index_t i = 0; i < n; ++i) trace += a(i, i);

  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged) << "seed " << seed;

  double sum = 0.0;
  for (float v : res.eigenvalues) sum += v;
  EXPECT_NEAR(sum, trace, 1e-3 * std::max(1.0, std::abs(trace)) + 1e-3 * n)
      << "seed " << seed << " n " << n;
}

TEST_P(TraceInvariantTest, FrobeniusNormEqualsEigenvalueNorm) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xabcdef);
  const index_t n = 32 + static_cast<index_t>(rng.bounded(64));
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());

  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 16;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);

  double s = 0.0;
  for (float v : res.eigenvalues) s += double(v) * double(v);
  const double fn = frobenius_norm<float>(a.view());
  EXPECT_NEAR(std::sqrt(s), fn, 1e-3 * fn) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceInvariantTest,
                         ::testing::Values<std::uint64_t>(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// Property: SBR invariants hold for every (b, nb) configuration.
// ---------------------------------------------------------------------------

class SbrConfigSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, std::uint64_t>> {};

TEST_P(SbrConfigSweep, BandStructureAndSpectrumInvariant) {
  const auto [b, nb_mult, seed] = GetParam();
  Rng rng(seed);
  const index_t n = 64 + static_cast<index_t>(rng.bounded(64));
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());

  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = b * nb_mult;
  auto res = *sbr::sbr_wy(a.view(), ctx, opt);

  // Structure: exactly banded.
  EXPECT_EQ(sbr::band_violation<float>(res.band.view(), b), 0.0) << "seed " << seed;

  // Spectrum invariant: Frobenius norm is preserved by orthogonal similarity.
  EXPECT_NEAR(frobenius_norm<float>(res.band.view()), frobenius_norm<float>(a.view()),
              1e-3 * frobenius_norm<float>(a.view()))
      << "b=" << b << " nbx=" << nb_mult << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SbrConfigSweep,
    ::testing::Combine(::testing::Values<index_t>(4, 8, 16),
                       ::testing::Values<index_t>(1, 2, 4),
                       ::testing::Values<std::uint64_t>(1, 2)));

// ---------------------------------------------------------------------------
// Property: determinism — same inputs, same bits.
// ---------------------------------------------------------------------------

TEST(Determinism, SbrWyIsBitwiseReproducible) {
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 42);
  tc::TcEngine e1(tc::TcPrecision::Fp16), e2(tc::TcPrecision::Fp16);
  Context c1(e1), c2(e2);
  sbr::SbrOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  auto r1 = *sbr::sbr_wy(a.view(), c1, opt);
  auto r2 = *sbr::sbr_wy(a.view(), c2, opt);
  EXPECT_EQ(frobenius_diff<float>(r1.band.view(), r2.band.view()), 0.0);
}

TEST(Determinism, EvdIsBitwiseReproducible) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 43);
  tc::Fp32Engine e1, e2;
  Context c1(e1), c2(e2);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  auto r1 = *evd::solve(a.view(), c1, opt);
  auto r2 = *evd::solve(a.view(), c2, opt);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(r1.eigenvalues[static_cast<std::size_t>(i)],
              r2.eigenvalues[static_cast<std::size_t>(i)]);
}

// ---------------------------------------------------------------------------
// Property: similarity shifts — eigenvalues of A + c I are lambda + c.
// ---------------------------------------------------------------------------

TEST(ShiftInvariance, DiagonalShiftMovesSpectrum) {
  const index_t n = 80;
  auto a = test::random_symmetric<float>(n, 44);
  Matrix<float> shifted = a;
  const float c = 3.25f;
  for (index_t i = 0; i < n; ++i) shifted(i, i) += c;

  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  auto r1 = *evd::solve(a.view(), ctx, opt);
  auto r2 = *evd::solve(shifted.view(), ctx, opt);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(r2.eigenvalues[static_cast<std::size_t>(i)],
                r1.eigenvalues[static_cast<std::size_t>(i)] + c, 1e-3);
}

TEST(ShiftInvariance, NegationFlipsAndReversesSpectrum) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 45);
  Matrix<float> neg(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) neg(i, j) = -a(i, j);

  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  auto r1 = *evd::solve(a.view(), ctx, opt);
  auto r2 = *evd::solve(neg.view(), ctx, opt);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(r2.eigenvalues[static_cast<std::size_t>(i)],
                -r1.eigenvalues[static_cast<std::size_t>(n - 1 - i)], 1e-3);
}

// ---------------------------------------------------------------------------
// Property: engine accuracy ordering fp32 <= ectc < tc on the same problem.
// ---------------------------------------------------------------------------

class EngineOrderingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineOrderingTest, BackwardErrorOrdering) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const index_t n = 96;
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());

  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  auto ref = *evd::reference_eigenvalues(ad.view());

  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;

  auto err_for = [&](tc::GemmEngine& eng) {
    Context ctx(eng);
    auto res = *evd::solve(a.view(), ctx, opt);
    std::vector<double> got(res.eigenvalues.begin(), res.eigenvalues.end());
    return eigenvalue_error(ref.data(), got.data(), n);
  };
  tc::Fp32Engine fp;
  tc::EcTcEngine ec;
  tc::TcEngine tchalf;
  const double e_fp = err_for(fp);
  const double e_ec = err_for(ec);
  const double e_tc = err_for(tchalf);
  EXPECT_LT(e_fp, e_tc) << "seed " << seed;
  EXPECT_LT(e_ec, e_tc) << "seed " << seed;
  EXPECT_LT(e_ec, 20.0 * e_fp) << "seed " << seed;  // EC ~ fp32 class
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOrderingTest,
                         ::testing::Values<std::uint64_t>(7, 17, 27));

// ---------------------------------------------------------------------------
// Property: all matgen classes survive the TC pipeline within TC eps.
// ---------------------------------------------------------------------------

class MatrixClassSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatrixClassSweep, TcPipelineBounded) {
  const auto row = matgen::paper_accuracy_rows()[static_cast<std::size_t>(GetParam())];
  const index_t n = 128;
  Rng rng(900 + GetParam());
  auto ad = matgen::generate(row.type, n, row.cond, rng);
  Matrix<float> a(n, n);
  convert_matrix<double, float>(ad.view(), a.view());
  auto ref = *evd::reference_eigenvalues(ad.view());

  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 32;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  std::vector<double> got(res.eigenvalues.begin(), res.eigenvalues.end());
  // Paper Table 4 bound: E_s under the TC machine eps.
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), n), 1e-4)
      << matgen::matrix_type_name(row.type, row.cond);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, MatrixClassSweep, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Property: decomposition invariants the batched and single-solve paths
// share — eigenvalue ordering, ||Q^T Q - I||, ||A - Q L Q^T|| / ||A|| —
// across matgen spectrum classes including sign-flipped (indefinite) ones.
// ---------------------------------------------------------------------------

// A = Q diag(s) Q^T with the prescribed spectrum of `type` and every other
// eigenvalue's sign flipped when `flip` — an indefinite variant of the SPD
// matgen classes, with the flipped spectrum returned (ascending) in *out.
Matrix<float> signed_spectrum_matrix(matgen::MatrixType type, index_t n, double cond,
                                     bool flip, Rng& rng, std::vector<double>* out) {
  auto s = matgen::prescribed_spectrum(type, n, cond);
  if (flip)
    for (std::size_t i = 0; i < s.size(); i += 2) s[i] = -s[i];
  auto q = matgen::random_orthogonal(n, rng);
  Matrix<double> sq(n, n), a(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) sq(i, j) = s[static_cast<std::size_t>(j)] * q(i, j);
  blas::gemm(Trans::No, Trans::Yes, 1.0, sq.view(), q.view(), 0.0, a.view());
  make_symmetric(a.view());
  std::sort(s.begin(), s.end());
  *out = std::move(s);
  Matrix<float> af(n, n);
  convert_matrix<double, float>(a.view(), af.view());
  return af;
}

struct DecompCase {
  matgen::MatrixType type;
  double cond;
  bool flip;  ///< sign-flip half the spectrum (indefinite variant)
};

class DecompositionInvariants
    : public ::testing::TestWithParam<std::tuple<DecompCase, std::uint64_t>> {};

TEST_P(DecompositionInvariants, OrderingOrthogonalityAndReconstruction) {
  const auto [c, seed] = GetParam();
  Rng rng(seed);
  const index_t n = 48 + static_cast<index_t>(rng.bounded(48));
  std::vector<double> expected;
  Matrix<float> a = signed_spectrum_matrix(c.type, n, c.cond, c.flip, rng, &expected);

  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged) << "seed " << seed;

  // Ascending order, and the prescribed spectrum recovered.
  for (std::size_t i = 0; i + 1 < res.eigenvalues.size(); ++i)
    EXPECT_LE(res.eigenvalues[i], res.eigenvalues[i + 1]) << "seed " << seed;
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)],
                expected[static_cast<std::size_t>(i)], 1e-3)
        << "seed " << seed << " flip " << c.flip;

  // ||Q^T Q - I|| and ||A - Q L Q^T||_F / ||A||_F.
  EXPECT_LT(orthogonality_error<float>(res.vectors.view()), 1e-3) << "seed " << seed;
  Matrix<float> lq(n, n), rec(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      lq(i, j) = res.vectors(i, j) * res.eigenvalues[static_cast<std::size_t>(j)];
  blas::gemm<float>(Trans::No, Trans::Yes, 1.0f, lq.view(), res.vectors.view(), 0.0f,
                    rec.view());
  EXPECT_LT(test::rel_diff<float>(rec.view(), a.view()), 1e-3) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SpectrumClasses, DecompositionInvariants,
    ::testing::Combine(
        ::testing::Values(DecompCase{matgen::MatrixType::Cluster0, 1e3, false},
                          DecompCase{matgen::MatrixType::Cluster1, 1e3, true},
                          DecompCase{matgen::MatrixType::Geo, 1e4, false},
                          DecompCase{matgen::MatrixType::Geo, 1e2, true},
                          DecompCase{matgen::MatrixType::Arith, 1e3, true}),
        ::testing::Values<std::uint64_t>(101, 202)));

// The same invariants hold — bitwise — through the batched driver: the batch
// path must be the single-solve path run N times, nothing more.
TEST(DecompositionInvariantsBatch, BatchedPathSharesSingleSolveInvariants) {
  const index_t n = 56;
  Rng rng(4242);
  std::vector<Matrix<float>> batch;
  std::vector<std::vector<double>> expected(4);
  batch.reserve(4);
  for (int i = 0; i < 4; ++i)
    batch.push_back(signed_spectrum_matrix(matgen::MatrixType::Geo, n, 1e3, i % 2 == 1, rng,
                                           &expected[static_cast<std::size_t>(i)]));

  tc::Fp32Engine eng;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 8;
  bopt.evd.big_block = 32;
  bopt.evd.vectors = true;
  bopt.num_threads = 4;
  auto bres = evd::solve_many(batch, eng, bopt);
  ASSERT_TRUE(bres.all_ok());

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& p = bres.problems[i];
    for (std::size_t j = 0; j + 1 < p.eigenvalues.size(); ++j)
      EXPECT_LE(p.eigenvalues[j], p.eigenvalues[j + 1]);
    EXPECT_LT(orthogonality_error<float>(p.vectors.view()), 1e-3) << "problem " << i;
    EXPECT_LT(evd::eigenpair_residual(batch[i].view(), p.eigenvalues, p.vectors.view()), 1e-2)
        << "problem " << i;

    Context ctx(eng);
    auto sres = *evd::solve(batch[i].view(), ctx, bopt.evd);
    for (std::size_t j = 0; j < sres.eigenvalues.size(); ++j)
      EXPECT_EQ(p.eigenvalues[j], sres.eigenvalues[j]) << "problem " << i;
    EXPECT_EQ(frobenius_diff<float>(p.vectors.view(), sres.vectors.view()), 0.0)
        << "problem " << i;
  }
}

// ---------------------------------------------------------------------------
// Property: SBR band-width postcondition for awkward n — odd and prime
// orders not divisible by nb (partial trailing blocks on every level).
// ---------------------------------------------------------------------------

class SbrAwkwardOrders
    : public ::testing::TestWithParam<std::tuple<index_t, std::uint64_t>> {};

TEST_P(SbrAwkwardOrders, BandPostconditionForOddPrimeOrders) {
  const auto [n, seed] = GetParam();
  ASSERT_EQ(n % 2, 1) << "sweep is about odd/prime orders";
  Rng rng(seed);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());

  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;  // never divides an odd n: every sweep ends ragged
  ASSERT_NE(n % opt.big_block, 0);
  auto res = *sbr::sbr_wy(a.view(), ctx, opt);

  EXPECT_EQ(sbr::band_violation<float>(res.band.view(), opt.bandwidth), 0.0)
      << "n=" << n << " seed " << seed;
  const double fa = frobenius_norm<float>(a.view());
  EXPECT_NEAR(frobenius_norm<float>(res.band.view()), fa, 1e-3 * fa) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(OddPrimes, SbrAwkwardOrders,
                         ::testing::Combine(::testing::Values<index_t>(67, 83, 97, 101, 127),
                                            ::testing::Values<std::uint64_t>(5, 6)));

// ---------------------------------------------------------------------------
// Degenerate inputs.
// ---------------------------------------------------------------------------

TEST(Degenerate, ZeroMatrix) {
  const index_t n = 40;
  Matrix<float> a(n, n);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  for (float v : res.eigenvalues) EXPECT_EQ(v, 0.0f);
}

TEST(Degenerate, IdentityMatrix) {
  const index_t n = 33;
  Matrix<float> a(n, n);
  set_identity(a.view());
  tc::TcEngine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 4;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  for (float v : res.eigenvalues) EXPECT_NEAR(v, 1.0f, 1e-5f);
}

TEST(Degenerate, RankOneMatrix) {
  const index_t n = 50;
  Rng rng(46);
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  Matrix<float> a(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      a(i, j) = x[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(j)];
  double xn2 = 0.0;
  for (float v : x) xn2 += double(v) * double(v);

  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.eigenvalues.back(), xn2, 1e-3 * xn2);
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)], 0.0f, 1e-3f * float(xn2));
}

TEST(Degenerate, TinyMatrices) {
  for (index_t n : {2, 3, 4, 5}) {
    auto a = test::random_symmetric<float>(n, 47 + n);
    tc::Fp32Engine eng;
    Context ctx(eng);
    evd::EvdOptions opt;
    opt.bandwidth = 1;
    auto res = *evd::solve(a.view(), ctx, opt);
    ASSERT_TRUE(res.converged) << n;
    Matrix<double> ad(n, n);
    convert_matrix<float, double>(a.view(), ad.view());
    auto ref = *evd::reference_eigenvalues(ad.view());
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)], 1e-4)
          << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Property: the wavefront second stage preserves the spectrum end-to-end.
// Random matrices with SIGNED spectra at prime orders (worst case for both
// the SBR blocking and the wavefront's sweep-block remainders), solved
// through evd::solve with the wavefront forced on (bulge_threads = 8), for
// both full-width (TwoStageWy) and narrow-band (TwoStageDbr, b = 2) second
// stages — and the whole solve must be bitwise-identical to bulge_threads=1,
// vectors included, because the wavefront is pinned to the serial rotation
// sequence.
// ---------------------------------------------------------------------------

class BulgeWavefrontInvariant
    : public ::testing::TestWithParam<std::tuple<index_t, evd::Reduction>> {};

TEST_P(BulgeWavefrontInvariant, SpectrumPreservedAndBitwiseEqualToSerial) {
  const auto [n, reduction] = GetParam();
  Rng rng(3100 + static_cast<std::uint64_t>(n));
  // matgen Normal draws a prescribed spectrum from N(0,1): signed by
  // construction (negative and positive eigenvalues in every draw).
  auto ad = matgen::generate(matgen::MatrixType::Normal, n, 0.0, rng);
  Matrix<float> a(n, n);
  convert_matrix<double, float>(ad.view(), a.view());
  auto ref = *evd::reference_eigenvalues(ad.view());

  tc::Fp32Engine eng;
  evd::EvdOptions opt;
  opt.reduction = reduction;
  opt.vectors = true;
  if (reduction == evd::Reduction::TwoStageDbr) {
    opt.bandwidth = 2;  // the DBR narrow-band shape: bulge does all the work
    opt.big_block = 32;
  } else {
    opt.bandwidth = 8;
    opt.big_block = 32;
  }

  opt.bulge_threads = 8;  // force the wavefront path
  Context cw(eng);
  auto wave = *evd::solve(a.view(), cw, opt);
  ASSERT_TRUE(wave.converged);

  // Signed spectrum preserved against the double one-stage reference.
  std::vector<double> got(wave.eigenvalues.begin(), wave.eigenvalues.end());
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), n), 1e-4) << "n=" << n;
  EXPECT_LT(got.front(), 0.0) << "spectrum not signed — test lost its point";
  EXPECT_GT(got.back(), 0.0);

  // The whole solve — eigenvalues AND eigenvectors — is bitwise-equal to the
  // serial second stage.
  opt.bulge_threads = 1;
  Context cs(eng);
  auto serial = *evd::solve(a.view(), cs, opt);
  ASSERT_TRUE(serial.converged);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(wave.eigenvalues[static_cast<std::size_t>(i)],
              serial.eigenvalues[static_cast<std::size_t>(i)])
        << "lambda[" << i << "]";
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(wave.vectors(i, j), serial.vectors(i, j)) << "V(" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(
    PrimeOrders, BulgeWavefrontInvariant,
    ::testing::Combine(::testing::Values<index_t>(61, 101, 127),
                       ::testing::Values(evd::Reduction::TwoStageWy,
                                         evd::Reduction::TwoStageDbr)));

TEST(Degenerate, HugeBandwidthClampedToMatrix) {
  const index_t n = 24;
  auto a = test::random_symmetric<float>(n, 48);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 1000;  // clamped internally to n-1
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  auto ref = *evd::reference_eigenvalues(ad.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)],
                1e-4);
}

}  // namespace
}  // namespace tcevd
