// QR family: geqr2/geqrf/orgqr/larft/build_wy.
#include <gtest/gtest.h>

#include <vector>

#include "src/blas/blas.hpp"
#include "src/lapack/householder.hpp"
#include "src/lapack/qr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

/// Checks A == Q R and Q^T Q == I given factored storage + tau.
void check_qr(ConstMatrixView<double> a_orig, ConstMatrixView<double> factored,
              const std::vector<double>& tau, double tol) {
  const index_t m = a_orig.rows();
  const index_t n = a_orig.cols();
  Matrix<double> q(m, n);
  Matrix<double> fact_copy(m, n);
  copy_matrix(factored, fact_copy.view());
  lapack::orgqr(fact_copy.view(), tau, q.view());

  Matrix<double> r(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, m - 1); ++i) r(i, j) = factored(i, j);

  Matrix<double> qr(m, n);
  blas::gemm(Trans::No, Trans::No, 1.0, q.view(), r.view(), 0.0, qr.view());
  EXPECT_LT(test::rel_diff<double>(qr.view(), a_orig), tol);
  EXPECT_LT(orthogonality_residual<double>(q.view()), tol * m);
}

class GeqrfShapeTest : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {
};

TEST_P(GeqrfShapeTest, BlockedQrReconstructs) {
  const auto [m, n, nb] = GetParam();
  auto a = test::random_matrix(m, n, 42 + m + n);
  auto work = a;
  std::vector<double> tau;
  lapack::geqrf(work.view(), tau, nb);
  check_qr(a.view(), work.view(), tau, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeqrfShapeTest,
                         ::testing::Values(std::make_tuple(16, 16, 4),
                                           std::make_tuple(64, 32, 8),
                                           std::make_tuple(100, 30, 32),
                                           std::make_tuple(37, 23, 5),
                                           std::make_tuple(200, 17, 16),
                                           std::make_tuple(33, 33, 64),  // nb > n
                                           std::make_tuple(8, 3, 1)));   // unblocked

TEST(Geqr2, MatchesGeqrf) {
  const index_t m = 45, n = 21;
  auto a = test::random_matrix(m, n, 1);
  auto w1 = a;
  auto w2 = a;
  std::vector<double> tau1, tau2;
  lapack::geqr2(w1.view(), tau1);
  lapack::geqrf(w2.view(), tau2, 7);
  // Same algorithm, same Householder convention: results match to roundoff.
  EXPECT_LT(test::rel_diff<double>(w1.view(), w2.view()), 1e-12);
  for (std::size_t i = 0; i < tau1.size(); ++i) EXPECT_NEAR(tau1[i], tau2[i], 1e-12);
}

TEST(Geqr2, RDiagonalNonPositiveConvention) {
  // With v = x - beta e1, beta = -sign(x1)||x||: R(0,0) = beta has the
  // opposite sign of the original leading entry.
  Matrix<double> a(6, 3);
  Rng rng(2);
  fill_normal(rng, a.view());
  a(0, 0) = 5.0;  // force positive leading entry
  std::vector<double> tau;
  lapack::geqr2(a.view(), tau);
  EXPECT_LT(a(0, 0), 0.0);
}

TEST(Larft, CompactWyMatchesExplicitProduct) {
  const index_t m = 30, k = 6;
  auto a = test::random_matrix(m, k, 3);
  std::vector<double> tau;
  lapack::geqr2(a.view(), tau);

  // Build V (unit lower trapezoidal) and T.
  Matrix<double> v(m, k);
  for (index_t j = 0; j < k; ++j) {
    v(j, j) = 1.0;
    for (index_t i = j + 1; i < m; ++i) v(i, j) = a(i, j);
  }
  Matrix<double> t(k, k);
  lapack::larft<double>(v.view(), tau.data(), t.view());

  // Explicit product H(0) H(1) ... H(k-1).
  Matrix<double> h(m, m);
  set_identity(h.view());
  std::vector<double> work(static_cast<std::size_t>(m));
  for (index_t j = k - 1; j >= 0; --j)
    lapack::larf_left(&v(j, j), 1, tau[static_cast<std::size_t>(j)], h.sub(j, 0, m - j, m),
                      work.data());

  // I - V T V^T must equal the product.
  Matrix<double> vt(m, k);
  copy_matrix<double>(v.view(), vt.view());
  blas::trmm(blas::Side::Right, blas::Uplo::Upper, Trans::No, blas::Diag::NonUnit, 1.0,
             t.view(), vt.view());
  Matrix<double> wy(m, m);
  set_identity(wy.view());
  blas::gemm(Trans::No, Trans::Yes, -1.0, vt.view(), v.view(), 1.0, wy.view());
  EXPECT_LT(test::rel_diff<double>(wy.view(), h.view()), 1e-13);
}

TEST(BuildWy, IMinusWYtEqualsQ) {
  const index_t m = 50, k = 8;
  auto a = test::random_matrix(m, k, 4);
  auto factored = a;
  std::vector<double> tau;
  lapack::geqr2(factored.view(), tau);

  Matrix<double> w(m, k), y(m, k);
  lapack::build_wy<double>(factored.view(), tau, w.view(), y.view());

  // Q from orgqr (m x k columns of the full Q).
  Matrix<double> q(m, k);
  Matrix<double> fc = factored;
  lapack::orgqr(fc.view(), tau, q.view());

  // (I - W Y^T) restricted to the first k columns equals Q.
  Matrix<double> iwyt(m, k);
  set_identity(iwyt.view());
  blas::gemm(Trans::No, Trans::Yes, -1.0, w.view(),
             ConstMatrixView<double>(y.sub(0, 0, k, k)), 1.0, iwyt.view());
  EXPECT_LT(test::rel_diff<double>(iwyt.view(), q.view()), 1e-12);
}

TEST(BuildWy, YIsUnitLowerTrapezoidal) {
  const index_t m = 20, k = 5;
  auto a = test::random_matrix(m, k, 5);
  std::vector<double> tau;
  lapack::geqr2(a.view(), tau);
  Matrix<double> w(m, k), y(m, k);
  lapack::build_wy<double>(a.view(), tau, w.view(), y.view());
  for (index_t j = 0; j < k; ++j) {
    EXPECT_EQ(y(j, j), 1.0);
    for (index_t i = 0; i < j; ++i) EXPECT_EQ(y(i, j), 0.0);
  }
}

TEST(Orgqr, ProducesOrthonormalColumnsForTallMatrix) {
  const index_t m = 120, n = 15;
  auto a = test::random_matrix(m, n, 6);
  std::vector<double> tau;
  lapack::geqrf(a.view(), tau, 8);
  Matrix<double> q(m, n);
  lapack::orgqr(a.view(), tau, q.view());
  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-12);
}

TEST(Geqrf, FloatPrecisionReasonable) {
  const index_t m = 80, n = 20;
  auto a = test::random_matrix_f(m, n, 7);
  auto work = a;
  std::vector<float> tau;
  lapack::geqrf(work.view(), tau, 8);
  Matrix<float> q(m, n);
  lapack::orgqr(work.view(), tau, q.view());
  EXPECT_LT(orthogonality_residual<float>(q.view()), 1e-4);
}

}  // namespace
}  // namespace tcevd
