// Householder reconstruction from explicit Q (paper Algorithm 3):
// I - W Y^T == Q S, Y unit lower trapezoidal, and the full TSQR->WY panel
// pipeline used inside SBR.
#include <gtest/gtest.h>

#include <vector>

#include "src/blas/blas.hpp"
#include "src/lapack/qr.hpp"
#include "src/tsqr/reconstruct_wy.hpp"
#include "src/tsqr/tsqr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

template <typename T>
void check_reconstruction(index_t m, index_t n, std::uint64_t seed, double tol) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  fill_normal(rng, a.view());
  Matrix<T> q(m, n), r(n, n);
  ASSERT_TRUE(tsqr::tsqr_factor(a.view(), q.view(), r.view()).ok());

  Matrix<T> w(m, n), y(m, n);
  std::vector<T> signs;
  ASSERT_TRUE(tsqr::reconstruct_wy(q.view(), w.view(), y.view(), signs).ok());

  // Y unit lower trapezoidal.
  for (index_t j = 0; j < n; ++j) {
    EXPECT_EQ(y(j, j), T{1});
    for (index_t i = 0; i < j; ++i) EXPECT_EQ(y(i, j), T{});
  }

  // I - W Y^T == Q * S (compare on the full m x m is expensive; check the
  // first n columns, which determine the reflectors, and the action on a
  // random vector for the rest).
  Matrix<T> qs(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) qs(i, j) = q(i, j) * signs[static_cast<std::size_t>(j)];

  Matrix<T> iwyt(m, n);
  set_identity(iwyt.view());
  blas::gemm(Trans::No, Trans::Yes, T{-1}, w.view(), ConstMatrixView<T>(y.sub(0, 0, n, n)),
             T{1}, iwyt.view());
  EXPECT_LT(test::rel_diff<T>(iwyt.view(), qs.view()), tol);

  // Panel identity: A == (I - W Y^T) * (S R): apply to S R.
  Matrix<T> sr(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) sr(i, j) = signs[static_cast<std::size_t>(i)] * r(i, j);
  Matrix<T> rebuilt(m, n);
  blas::gemm(Trans::No, Trans::No, T{1}, iwyt.view(), sr.view(), T{}, rebuilt.view());
  EXPECT_LT(test::rel_diff<T>(rebuilt.view(), a.view()), tol);
}

class ReconstructTest : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(ReconstructTest, DoublePrecision) {
  const auto [m, n] = GetParam();
  check_reconstruction<double>(m, n, 3 + m, 1e-11);
}

TEST_P(ReconstructTest, SinglePrecision) {
  const auto [m, n] = GetParam();
  check_reconstruction<float>(m, n, 5 + m, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReconstructTest,
                         ::testing::Values(std::make_tuple(16, 16),
                                           std::make_tuple(64, 8),
                                           std::make_tuple(300, 12),
                                           std::make_tuple(1000, 4),
                                           std::make_tuple(50, 1)));

TEST(ReconstructWy, SignsAreUnitMagnitude) {
  const index_t m = 100, n = 10;
  auto a = test::random_matrix(m, n, 9);
  Matrix<double> q(m, n), r(n, n);
  ASSERT_TRUE(tsqr::tsqr_factor(a.view(), q.view(), r.view()).ok());
  Matrix<double> w(m, n), y(m, n);
  std::vector<double> signs;
  ASSERT_TRUE(tsqr::reconstruct_wy(q.view(), w.view(), y.view(), signs).ok());
  ASSERT_EQ(signs.size(), static_cast<std::size_t>(n));
  for (double s : signs) EXPECT_DOUBLE_EQ(std::abs(s), 1.0);
}

TEST(ReconstructWy, MatchesBuildWyFromHouseholderQr) {
  // Reconstructing from the orgqr-produced explicit Q of a Householder QR
  // must reproduce (W, Y) equivalent to build_wy up to the sign matrix:
  // compare the projectors I - W Y^T applied to a random matrix.
  const index_t m = 80, n = 6;
  auto a = test::random_matrix(m, n, 11);
  auto factored = a;
  std::vector<double> tau;
  lapack::geqr2(factored.view(), tau);
  Matrix<double> w1(m, n), y1(m, n);
  lapack::build_wy<double>(factored.view(), tau, w1.view(), y1.view());
  Matrix<double> q(m, n);
  {
    Matrix<double> fc = factored;
    lapack::orgqr(fc.view(), tau, q.view());
  }
  Matrix<double> w2(m, n), y2(m, n);
  std::vector<double> signs;
  ASSERT_TRUE(tsqr::reconstruct_wy(q.view(), w2.view(), y2.view(), signs).ok());

  // Both (I - W Y^T) are orthogonal matrices whose first n columns equal
  // Q (up to signs). Compare action on a random block.
  auto x = test::random_matrix(m, 5, 12);
  Matrix<double> r1 = x, r2 = x;
  // r = x - W (Y^T x)
  Matrix<double> t1(n, 5), t2(n, 5);
  blas::gemm(Trans::Yes, Trans::No, 1.0, y1.view(), x.view(), 0.0, t1.view());
  blas::gemm(Trans::No, Trans::No, -1.0, w1.view(), t1.view(), 1.0, r1.view());
  blas::gemm(Trans::Yes, Trans::No, 1.0, y2.view(), x.view(), 0.0, t2.view());
  blas::gemm(Trans::No, Trans::No, -1.0, w2.view(), t2.view(), 1.0, r2.view());

  // Both are orthogonal transforms of x: norms must match.
  EXPECT_NEAR(frobenius_norm<double>(r1.view()), frobenius_norm<double>(r2.view()), 1e-10);
}

TEST(ReconstructWy, OrthogonalityOfIWYt) {
  // I - W Y^T must be exactly orthogonal (it is a product of reflectors).
  const index_t m = 60, n = 8;
  auto a = test::random_matrix(m, n, 13);
  Matrix<double> q(m, n), r(n, n);
  ASSERT_TRUE(tsqr::tsqr_factor(a.view(), q.view(), r.view()).ok());
  Matrix<double> w(m, n), y(m, n);
  std::vector<double> signs;
  ASSERT_TRUE(tsqr::reconstruct_wy(q.view(), w.view(), y.view(), signs).ok());

  Matrix<double> full(m, m);
  set_identity(full.view());
  blas::gemm(Trans::No, Trans::Yes, -1.0, w.view(), y.view(), 1.0, full.view());
  EXPECT_LT(orthogonality_residual<double>(full.view()), 1e-10 * m);
}

}  // namespace
}  // namespace tcevd
