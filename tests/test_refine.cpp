// Mixed-precision eigenpair refinement (Rayleigh-quotient iteration).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/refine.hpp"
#include "src/matgen/matgen.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

TEST(Refine, RecoversDoubleAccuracyFromTcPairs) {
  const index_t n = 96;
  Rng rng(1);
  auto gen = matgen::generate(matgen::MatrixType::Arith, n, 1e2, rng);
  Matrix<float> a(n, n);
  convert_matrix<double, float>(gen.view(), a.view());
  // Reference must be the spectrum of the float-rounded matrix the pipeline
  // (and the refinement) actually sees — rounding A to fp32 already shifts
  // eigenvalues by ~1e-9, which refinement cannot and should not undo.
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());

  // Low-precision pipeline.
  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);

  // Refine every pair.
  auto refined = evd::refine_eigenpairs(ctx, a.view(), res.eigenvalues, res.vectors.view());

  const double anorm = frobenius_norm<double>(ad.view());
  auto ref = *evd::reference_eigenvalues(ad.view());
  double before = 0.0, after = 0.0;
  for (index_t i = 0; i < n; ++i) {
    before = std::max(before, std::abs(double(res.eigenvalues[static_cast<std::size_t>(i)]) -
                                       ref[static_cast<std::size_t>(i)]));
    // Refined values may reorder within clusters; match to nearest reference.
    double best = 1e300;
    for (index_t j = 0; j < n; ++j)
      best = std::min(best, std::abs(refined.eigenvalues[static_cast<std::size_t>(i)] -
                                     ref[static_cast<std::size_t>(j)]));
    after = std::max(after, best);
  }
  EXPECT_LT(after, before / 100.0);   // at least two orders recovered
  EXPECT_LT(after, 1e-10 * anorm);    // near fp64 level
  for (double r : refined.residuals) EXPECT_LT(r, 1e-9 * anorm);
}

TEST(Refine, AlreadyAccuratePairsConvergeImmediately) {
  const index_t n = 40;
  auto ad = test::random_symmetric<double>(n, 2);
  Matrix<float> a(n, n);
  convert_matrix<double, float>(ad.view(), a.view());
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.vectors = true;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);

  auto refined = evd::refine_eigenpairs(ctx, a.view(), res.eigenvalues, res.vectors.view());
  // fp32-accurate pairs need at most ~1 iteration each to hit fp64 tol.
  EXPECT_LE(refined.total_iterations, 2 * n);
  for (double r : refined.residuals) EXPECT_LT(r, 1e-9);
}

TEST(Refine, SubsetOfPairs) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 3);
  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);

  // Refine only the 3 largest pairs (the low-rank use case).
  std::vector<float> lam(res.eigenvalues.end() - 3, res.eigenvalues.end());
  auto v3 = res.vectors.sub(0, n - 3, n, 3);
  auto refined = evd::refine_eigenpairs(ctx, a.view(), lam, ConstMatrixView<float>(v3));
  ASSERT_EQ(refined.eigenvalues.size(), 3u);
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  const double anorm = frobenius_norm<double>(ad.view());
  for (double r : refined.residuals) EXPECT_LT(r, 1e-10 * anorm);
}

TEST(Refine, VectorsStayNormalized) {
  const index_t n = 32;
  auto a = test::random_symmetric<float>(n, 4);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 4;
  opt.vectors = true;
  auto res = *evd::solve(a.view(), ctx, opt);
  auto refined = evd::refine_eigenpairs(ctx, a.view(), res.eigenvalues, res.vectors.view());
  for (index_t j = 0; j < n; ++j) {
    double nrm = 0.0;
    for (index_t i = 0; i < n; ++i) nrm += refined.vectors(i, j) * refined.vectors(i, j);
    EXPECT_NEAR(std::sqrt(nrm), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace tcevd
