// RNG determinism and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"

namespace tcevd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sum2 / n - (sum / n) * (sum / n), 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(33);
  double sum = 0.0, sum2 = 0.0, sum4 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
    sum4 += x * x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
  EXPECT_NEAR(sum4 / n, 3.0, 0.15);  // kurtosis of a standard normal
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(7), 7ull);
  }
  EXPECT_EQ(rng.bounded(0), 0ull);
  EXPECT_EQ(rng.bounded(1), 0ull);
}

TEST(Rng, BoundedRoughlyUniform) {
  Rng rng(77);
  int counts[5] = {0, 0, 0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(5)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(Rng, FillHelpersShapeAndRange) {
  Rng rng(3);
  Matrix<float> a(10, 10);
  fill_uniform(rng, a.view(), -2.0, 2.0);
  for (index_t j = 0; j < 10; ++j)
    for (index_t i = 0; i < 10; ++i) {
      EXPECT_GE(a(i, j), -2.0f);
      EXPECT_LT(a(i, j), 2.0f);
    }
}

}  // namespace
}  // namespace tcevd
