// Successive band reduction: both variants, all engines, panel kinds.
// Checks bandedness (exact), backward error A = Q B Q^T, orthogonality of Q,
// spectrum preservation, and WY-vs-ZY agreement.
#include <gtest/gtest.h>

#include <vector>

#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/sbr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;
using sbr::PanelKind;
using sbr::SbrOptions;

/// ||A - Q B Q^T||_F / ||A||_F computed in double.
double sbr_backward_error(ConstMatrixView<float> a, ConstMatrixView<float> q,
                          ConstMatrixView<float> b) {
  const index_t n = a.rows();
  Matrix<double> ad(n, n), qd(n, n), bd(n, n);
  convert_matrix<float, double>(a, ad.view());
  convert_matrix<float, double>(q, qd.view());
  convert_matrix<float, double>(b, bd.view());
  Matrix<double> t(n, n), qbqt(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0, qd.view(), bd.view(), 0.0, t.view());
  blas::gemm(Trans::No, Trans::Yes, 1.0, t.view(), qd.view(), 0.0, qbqt.view());
  return frobenius_diff<double>(qbqt.view(), ad.view()) / frobenius_norm<double>(ad.view());
}

/// Reference eigenvalues of a float symmetric matrix, computed in double.
std::vector<double> reference_eigs(ConstMatrixView<float> a) {
  const index_t n = a.rows();
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a, ad.view());
  std::vector<double> d, e, tau;
  lapack::sytrd(ad.view(), d, e, tau);
  TCEVD_CHECK(lapack::sterf(d, e).ok(), "sterf reference failed");
  return d;
}

/// Eigenvalues of the band matrix (through full double tridiagonalization).
std::vector<double> band_eigs(ConstMatrixView<float> band) {
  return reference_eigs(band);
}

struct SbrCase {
  bool wy;  // WY vs ZY
  index_t n, b, nb;
  PanelKind panel;
};

class SbrCorrectnessTest : public ::testing::TestWithParam<SbrCase> {};

TEST_P(SbrCorrectnessTest, Fp32ReducesAndIsBackwardStable) {
  const auto p = GetParam();
  auto a = test::random_symmetric<float>(p.n, 1234 + p.n + p.b);
  SbrOptions opt;
  opt.bandwidth = p.b;
  opt.big_block = p.nb;
  opt.panel = p.panel;
  opt.accumulate_q = true;
  tc::Fp32Engine eng;
  auto res = p.wy ? *sbr::sbr_wy(a.view(), eng, opt) : *sbr::sbr_zy(a.view(), eng, opt);

  // Exactly banded (panel zeros are written, not computed).
  EXPECT_EQ(sbr::band_violation<float>(res.band.view(), p.b), 0.0);

  // Q orthogonal, A = Q B Q^T.
  EXPECT_LT(orthogonality_error<float>(res.q.view()), 1e-6);
  EXPECT_LT(sbr_backward_error(a.view(), res.q.view(), res.band.view()), 1e-5);

  // Spectrum preserved.
  auto ref = reference_eigs(a.view());
  auto got = band_eigs(res.band.view());
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), p.n) * p.n, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndShapes, SbrCorrectnessTest,
    ::testing::Values(SbrCase{false, 96, 8, 8, PanelKind::Tsqr},
                      SbrCase{false, 96, 8, 8, PanelKind::BlockedQr},
                      SbrCase{false, 130, 16, 16, PanelKind::Tsqr},   // non-multiple n
                      SbrCase{false, 64, 4, 4, PanelKind::Tsqr},
                      SbrCase{true, 96, 8, 32, PanelKind::Tsqr},
                      SbrCase{true, 96, 8, 32, PanelKind::BlockedQr},
                      SbrCase{true, 130, 16, 32, PanelKind::Tsqr},
                      SbrCase{true, 64, 4, 16, PanelKind::Tsqr},
                      SbrCase{true, 100, 8, 8, PanelKind::Tsqr},      // nb == b edge
                      SbrCase{true, 120, 8, 64, PanelKind::Tsqr},     // few big blocks
                      SbrCase{true, 90, 16, 48, PanelKind::Tsqr},
                      SbrCase{true, 33, 16, 16, PanelKind::Tsqr}));   // tiny trailing

TEST(Sbr, ZyWithSyr2kMatchesTwoGemmPath) {
  const index_t n = 80, b = 8;
  auto a = test::random_symmetric<float>(n, 7);
  tc::Fp32Engine eng;
  SbrOptions o1;
  o1.bandwidth = b;
  SbrOptions o2 = o1;
  o2.zy_use_syr2k = true;
  auto r1 = *sbr::sbr_zy(a.view(), eng, o1);
  auto r2 = *sbr::sbr_zy(a.view(), eng, o2);
  // Same algorithm, different kernels: results agree to fp32 roundoff.
  EXPECT_LT(test::rel_diff<float>(r1.band.view(), r2.band.view()), 1e-5);
}

TEST(Sbr, WyAndZyProduceSameBandUpToSigns) {
  // The band matrices may differ by a similarity (different reflector
  // composition), but their spectra must agree tightly.
  const index_t n = 96, b = 8;
  auto a = test::random_symmetric<float>(n, 9);
  tc::Fp32Engine eng;
  SbrOptions zy;
  zy.bandwidth = b;
  SbrOptions wy = zy;
  wy.big_block = 32;
  auto rz = *sbr::sbr_zy(a.view(), eng, zy);
  auto rw = *sbr::sbr_wy(a.view(), eng, wy);
  auto ez = band_eigs(rz.band.view());
  auto ew = band_eigs(rw.band.view());
  EXPECT_LT(eigenvalue_error(ez.data(), ew.data(), n) * n, 1e-5);
}

TEST(Sbr, TensorCoreEngineKeepsTcEpsilonAccuracy) {
  const index_t n = 128, b = 16;
  auto a = test::random_symmetric<float>(n, 11);
  tc::TcEngine eng(tc::TcPrecision::Fp16);
  SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = 32;
  opt.accumulate_q = true;
  auto res = *sbr::sbr_wy(a.view(), eng, opt);
  EXPECT_EQ(sbr::band_violation<float>(res.band.view(), b), 0.0);
  // Paper Table 3: errors bounded by the TC machine eps ~ 1e-4 (after the
  // 1/N normalization they report ~1e-4; unnormalized stays ~b*eps16).
  EXPECT_LT(sbr_backward_error(a.view(), res.q.view(), res.band.view()), 5e-2);
  EXPECT_LT(orthogonality_error<float>(res.q.view()), 1e-3);
  // And the spectrum is close to the fp64 reference.
  auto ref = reference_eigs(a.view());
  auto got = band_eigs(res.band.view());
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), n), 1e-3);
}

TEST(Sbr, EcTcEngineRecoversFp32Accuracy) {
  const index_t n = 96, b = 8;
  auto a = test::random_symmetric<float>(n, 13);
  SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = 32;
  opt.accumulate_q = true;

  tc::TcEngine tc_eng(tc::TcPrecision::Fp16);
  tc::EcTcEngine ec_eng(tc::TcPrecision::Fp16);
  auto r_tc = *sbr::sbr_wy(a.view(), tc_eng, opt);
  auto r_ec = *sbr::sbr_wy(a.view(), ec_eng, opt);

  const double err_tc = sbr_backward_error(a.view(), r_tc.q.view(), r_tc.band.view());
  const double err_ec = sbr_backward_error(a.view(), r_ec.q.view(), r_ec.band.view());
  EXPECT_LT(err_ec, err_tc / 10.0);  // EC brings accuracy back toward fp32
  EXPECT_LT(err_ec, 1e-4);
}

TEST(Sbr, WyGeneratesSquarerGemmsThanZy) {
  // The paper's central claim, asserted structurally: the flop-weighted
  // inner dimension of WY GEMMs must exceed ZY's (whose k is pinned at b).
  const index_t n = 192, b = 8, nb = 64;
  auto a = test::random_symmetric<float>(n, 17);
  tc::Fp32Engine ez, ew;
  Context cz(ez), cw(ew);
  cz.telemetry().set_recording(true);
  cw.telemetry().set_recording(true);
  SbrOptions zy;
  zy.bandwidth = b;
  SbrOptions wy = zy;
  wy.big_block = nb;
  (void)sbr::sbr_zy(a.view(), cz, zy);
  (void)sbr::sbr_wy(a.view(), cw, wy);

  auto weighted_k = [](const std::vector<tc::GemmShape>& shapes) {
    double fl = 0.0, acc = 0.0;
    for (const auto& s : shapes) {
      acc += s.flops() * static_cast<double>(s.min_dim());
      fl += s.flops();
    }
    return acc / fl;
  };
  const double kz = weighted_k(cz.telemetry().recorded());
  const double kw = weighted_k(cw.telemetry().recorded());
  EXPECT_LE(kz, static_cast<double>(b));       // ZY never exceeds the bandwidth
  EXPECT_GT(kw, 2.0 * static_cast<double>(b)); // WY pushes toward nb

  // And WY does strictly more arithmetic (paper Table 2).
  EXPECT_GT(cw.telemetry().recorded_flops(), cz.telemetry().recorded_flops());
}

TEST(Sbr, CachedOaVariantMatchesLiteral) {
  // SbrOptions::wy_cache_oa_product is a flop-saving reorganisation of the
  // same math; results must agree to fp32 roundoff.
  const index_t n = 96, b = 8;
  auto a = test::random_symmetric<float>(n, 31);
  tc::Fp32Engine e1, e2;
  SbrOptions lit;
  lit.bandwidth = b;
  lit.big_block = 32;
  SbrOptions cached = lit;
  cached.wy_cache_oa_product = true;
  auto r1 = *sbr::sbr_wy(a.view(), e1, lit);
  auto r2 = *sbr::sbr_wy(a.view(), e2, cached);
  EXPECT_LT(test::rel_diff<float>(r1.band.view(), r2.band.view()), 1e-4);
}

TEST(Sbr, LookaheadScheduleMatchesSerialBand) {
  // SbrOptions::lookahead reorders work (next-panel factorization overlaps
  // the trailing update) without changing any operand, so the band and the
  // accumulated WY blocks must agree with the serial schedule. Exhaustive
  // shape coverage lives in test_lookahead.cpp (ctest label: lookahead).
  const index_t n = 100, b = 8;
  auto a = test::random_symmetric<float>(n, 37);
  tc::Fp32Engine eng;
  Context ctx(eng);
  SbrOptions serial;
  serial.bandwidth = b;
  serial.big_block = 32;
  SbrOptions overlapped = serial;
  overlapped.lookahead = true;
  auto r1 = *sbr::sbr_wy(a.view(), ctx, serial);
  auto r2 = *sbr::sbr_wy(a.view(), ctx, overlapped);
  EXPECT_LE(frobenius_diff<float>(r1.band.view(), r2.band.view()),
            1e-5 * frobenius_norm<float>(a.view()));
  ASSERT_EQ(r1.blocks.size(), r2.blocks.size());
  for (std::size_t k = 0; k < r1.blocks.size(); ++k)
    EXPECT_LT(test::rel_diff<float>(r1.blocks[k].w.view(), r2.blocks[k].w.view()), 1e-5)
        << "WY block " << k;
}

TEST(Sbr, FormWMatchesProgressiveAccumulation) {
  const index_t n = 96, b = 8;
  auto a = test::random_symmetric<float>(n, 19);
  tc::Fp32Engine eng;
  SbrOptions wy;
  wy.bandwidth = b;
  wy.big_block = 32;
  wy.accumulate_q = true;  // uses form_q internally
  auto rw = *sbr::sbr_wy(a.view(), eng, wy);

  // Progressive reference: apply blocks one by one to the identity.
  Matrix<float> q(n, n);
  set_identity(q.view());
  for (const auto& blk : rw.blocks) {
    const index_t rows = blk.w.rows();
    const index_t cols = blk.w.cols();
    auto qcols = q.sub(0, blk.row_offset, n, rows);
    Matrix<float> t(n, cols);
    blas::gemm(Trans::No, Trans::No, 1.0f, ConstMatrixView<float>(qcols), blk.w.view(), 0.0f,
               t.view());
    blas::gemm(Trans::No, Trans::Yes, -1.0f, t.view(), blk.y.view(), 1.0f, qcols);
  }
  EXPECT_LT(test::rel_diff<float>(rw.q.view(), q.view()), 1e-5);
}

TEST(Sbr, PanelFactorBothKindsAgree) {
  const index_t m = 200, k = 12;
  auto a = test::random_matrix_f(m, k, 21);
  for (auto kind : {PanelKind::Tsqr, PanelKind::BlockedQr}) {
    Matrix<float> panel = a;
    Matrix<float> w(m, k), y(m, k);
    ASSERT_TRUE(sbr::panel_factor_wy(kind, panel.view(), w.view(), y.view()).ok());
    // panel now holds [R; 0]; (I - W Y^T) [R; 0] must equal A.
    Matrix<float> rebuilt(m, k);
    copy_matrix<float>(ConstMatrixView<float>(panel.view()), rebuilt.view());
    Matrix<float> ytr(k, k);
    blas::gemm(Trans::Yes, Trans::No, 1.0f, y.view(), panel.view(), 0.0f, ytr.view());
    blas::gemm(Trans::No, Trans::No, -1.0f, w.view(), ytr.view(), 1.0f, rebuilt.view());
    EXPECT_LT(test::rel_diff<float>(rebuilt.view(), a.view()), 1e-4);
    for (index_t j = 0; j < k; ++j)
      for (index_t i = j + 1; i < m; ++i) EXPECT_EQ(panel(i, j), 0.0f);
  }
}

TEST(Sbr, ShortPanelFallback) {
  // m < k panels must not crash (exercised by odd trailing sizes).
  const index_t m = 5, k = 8;
  auto a = test::random_matrix_f(m, k, 23);
  Matrix<float> panel = a;
  Matrix<float> w(m, k), y(m, k);
  ASSERT_TRUE(sbr::panel_factor_wy(PanelKind::Tsqr, panel.view(), w.view(), y.view()).ok());
  Matrix<float> rebuilt(m, k);
  copy_matrix<float>(ConstMatrixView<float>(panel.view()), rebuilt.view());
  Matrix<float> ytr(m, k);
  blas::gemm(Trans::Yes, Trans::No, 1.0f, y.sub(0, 0, m, m), panel.view(), 0.0f,
             ytr.sub(0, 0, m, k));
  blas::gemm(Trans::No, Trans::No, -1.0f, w.sub(0, 0, m, m), ytr.sub(0, 0, m, k), 1.0f,
             rebuilt.view());
  EXPECT_LT(test::rel_diff<float>(rebuilt.view(), a.view()), 1e-4);
}

TEST(Sbr, BandUtilities) {
  Matrix<float> a(6, 6);
  a(5, 0) = 3.0f;  // far outside any small band
  a(1, 0) = 1.0f;
  EXPECT_EQ(sbr::band_violation<float>(a.view(), 1), 3.0);
  EXPECT_EQ(sbr::band_violation<float>(a.view(), 5), 0.0);
  sbr::truncate_to_band<float>(a.view(), 1);
  EXPECT_EQ(a(5, 0), 0.0f);
  EXPECT_EQ(a(1, 0), 1.0f);

  Matrix<float> s(3, 3);
  s(0, 1) = 2.0f;
  EXPECT_EQ(sbr::symmetry_violation<float>(s.view()), 2.0);
  s(1, 0) = 2.0f;
  EXPECT_EQ(sbr::symmetry_violation<float>(s.view()), 0.0);
}

TEST(Sbr, AlreadyBandedInputPreservedUpToSigns) {
  // Input with bandwidth exactly b: panels are already upper trapezoidal, so
  // the reduction only re-signs rows/columns (Householder beta = -sign(x1)
  // convention). Structure, diagonal, and spectrum must be unchanged.
  const index_t n = 48, b = 8;
  Rng rng(29);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<float>(a.view(), b);
  tc::Fp32Engine eng;
  SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = 16;
  auto res = *sbr::sbr_wy(a.view(), eng, opt);
  EXPECT_EQ(sbr::band_violation<float>(res.band.view(), b), 0.0);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(res.band(i, i), a(i, i), 1e-4);
  auto ref = reference_eigs(a.view());
  auto got = band_eigs(res.band.view());
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), n) * n, 1e-5);
}

}  // namespace
}  // namespace tcevd
