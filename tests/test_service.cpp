// EvdService: the stage-pipelined streaming driver (DESIGN.md §15).
//
// The acceptance bar this file enforces: per-request results are
// bitwise-identical to sequential evd::solve at any worker count and request
// mix; admission control honors the overflow policy; deadlines and
// priorities are honored at stage boundaries; faults and verification stay
// isolated per request; and a homogeneous steady-state stream performs the
// same number of heap allocations every round (context pool + slot recycling
// leave nothing to grow).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "src/common/context.hpp"
#include "src/common/fault.hpp"
#include "src/common/recovery.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/partial.hpp"
#include "src/evd/service.hpp"
#include "src/tensorcore/engine.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "tests/test_util.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter backing the steady-state allocation-parity
// regression below (same methodology as test_workspace.cpp: replacing the
// global operator new/delete pair is the only way to observe library-internal
// heap allocations from a test).
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

void* operator new(std::size_t sz, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align =
      static_cast<std::size_t>(al) < sizeof(void*) ? sizeof(void*)
                                                   : static_cast<std::size_t>(al);
  void* p = nullptr;
  if (posix_memalign(&p, align, sz ? sz : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz, std::align_val_t al) { return ::operator new(sz, al); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

void* operator new(std::size_t sz, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(sz ? sz : 1);
}
void* operator new[](std::size_t sz, const std::nothrow_t& tag) noexcept {
  return ::operator new(sz, tag);
}
void* operator new(std::size_t sz, std::align_val_t al, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align =
      static_cast<std::size_t>(al) < sizeof(void*) ? sizeof(void*)
                                                   : static_cast<std::size_t>(al);
  void* p = nullptr;
  return posix_memalign(&p, align, sz ? sz : 1) == 0 ? p : nullptr;
}
void* operator new[](std::size_t sz, std::align_val_t al, const std::nothrow_t& tag) noexcept {
  return ::operator new(sz, al, tag);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace tcevd {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

void expect_bitwise_equal(const std::vector<float>& got, const std::vector<float>& want,
                          const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << what << " eigenvalue " << i;
}

void expect_bitwise_equal(const Matrix<float>& got, const Matrix<float>& want,
                          const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (index_t j = 0; j < want.cols(); ++j)
    for (index_t i = 0; i < want.rows(); ++i)
      ASSERT_EQ(got(i, j), want(i, j)) << what << " vectors(" << i << ", " << j << ")";
}

// A mixed-size, mixed-option stream must return, per request, exactly the
// bits a sequential evd::solve of that request produces — the service
// reorders work, never numerics.
TEST_F(ServiceTest, BitwiseMatchesSequentialSolveAcrossMixedRequests) {
  tc::Fp32Engine eng;
  struct Spec {
    index_t n;
    std::uint64_t seed;
    evd::EvdOptions opt;
  };
  std::vector<Spec> specs;
  evd::EvdOptions base;
  base.bandwidth = 8;
  base.big_block = 32;
  for (int i = 0; i < 12; ++i) {
    Spec s;
    s.n = std::vector<index_t>{1, 24, 33, 48, 64, 96}[static_cast<std::size_t>(i) % 6];
    s.seed = 1000 + static_cast<std::uint64_t>(i);
    s.opt = base;
    s.opt.vectors = (i % 2 == 0);
    s.opt.solver = (i % 3 == 0) ? evd::TriSolver::Ql : evd::TriSolver::DivideConquer;
    if (i % 4 == 0) s.opt.bandwidth = 16;
    specs.push_back(s);
  }
  std::vector<Matrix<float>> mats;
  for (const Spec& s : specs) mats.push_back(test::random_symmetric<float>(s.n, s.seed));

  evd::ServiceOptions sopt;
  sopt.num_threads = 4;
  evd::EvdService service(eng, sopt);
  std::vector<evd::RequestId> ids;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    evd::RequestOptions ropt;
    ropt.evd = specs[i].opt;
    auto id = service.submit(mats[i].view(), ropt);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(*id);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    evd::RequestResult got = service.wait(ids[i]);
    ASSERT_TRUE(got.status.ok()) << "request " << i << ": " << got.status.to_string();
    Context ref_ctx(eng);
    auto want = evd::solve(mats[i].view(), ref_ctx, specs[i].opt);
    ASSERT_TRUE(want.ok());
    expect_bitwise_equal(got.eigenvalues, want->eigenvalues, "request");
    if (specs[i].opt.vectors) expect_bitwise_equal(got.vectors, want->vectors, "request");
  }
}

TEST_F(ServiceTest, SelectedRequestsMatchSolveSelected) {
  tc::Fp32Engine eng;
  const index_t n = 48;
  auto a = test::random_symmetric<float>(n, 77);
  evd::RequestOptions ropt;
  ropt.evd.bandwidth = 8;
  ropt.evd.big_block = 32;
  ropt.evd.vectors = true;
  ropt.selected = true;
  ropt.il = 3;
  ropt.iu = 11;

  evd::ServiceOptions sopt;
  sopt.num_threads = 2;
  evd::EvdService service(eng, sopt);
  auto id = service.submit(a.view(), ropt);
  ASSERT_TRUE(id.ok());
  evd::RequestResult got = service.wait(*id);
  ASSERT_TRUE(got.status.ok()) << got.status.to_string();

  Context ref_ctx(eng);
  auto want = evd::solve_selected(a.view(), ref_ctx, ropt.evd, ropt.il, ropt.iu, true);
  ASSERT_TRUE(want.ok());
  expect_bitwise_equal(got.eigenvalues, want->eigenvalues, "selected");
  expect_bitwise_equal(got.vectors, want->vectors, "selected");
}

// Malformed requests are refused at submit — a Status, never an abort, and
// never a consumed slot.
TEST_F(ServiceTest, SubmitRejectsMalformedRequests) {
  tc::Fp32Engine eng;
  evd::EvdService service(eng, {});
  Matrix<float> rect(4, 5);
  auto bad_shape = service.submit(rect.view(), {});
  ASSERT_FALSE(bad_shape.ok());
  EXPECT_EQ(bad_shape.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(bad_shape.status().message().find("square"), std::string::npos);

  auto a = test::random_symmetric<float>(16, 5);
  evd::RequestOptions ropt;
  ropt.selected = true;
  ropt.il = 5;
  ropt.iu = 2;  // inverted
  auto bad_range = service.submit(a.view(), ropt);
  ASSERT_FALSE(bad_range.ok());
  EXPECT_EQ(bad_range.status().code(), ErrorCode::InvalidArgument);
  ropt.il = 0;
  ropt.iu = 16;  // == n
  auto bad_hi = service.submit(a.view(), ropt);
  ASSERT_FALSE(bad_hi.ok());
  EXPECT_EQ(bad_hi.status().code(), ErrorCode::InvalidArgument);

  EXPECT_EQ(service.stats().submitted, 0);
}

TEST_F(ServiceTest, WaitClaimsEachIdExactlyOnce) {
  tc::Fp32Engine eng;
  evd::EvdService service(eng, {});
  auto a = test::random_symmetric<float>(8, 3);
  auto id = service.submit(a.view(), {});
  ASSERT_TRUE(id.ok());
  evd::RequestResult first = service.wait(*id);
  EXPECT_TRUE(first.status.ok());
  evd::RequestResult second = service.wait(*id);
  EXPECT_EQ(second.status.code(), ErrorCode::InvalidArgument);
  evd::RequestResult bogus = service.wait(static_cast<evd::RequestId>(0xdeadbeefULL << 32));
  EXPECT_EQ(bogus.status.code(), ErrorCode::InvalidArgument);
}

// Reject policy: with one chunky request in flight and max_in_flight == 1,
// the next submit must be refused with ResourceExhausted immediately.
TEST_F(ServiceTest, RejectPolicyReturnsResourceExhausted) {
  tc::Fp32Engine eng;
  evd::ServiceOptions sopt;
  sopt.num_threads = 1;
  sopt.max_in_flight = 1;
  sopt.overflow = evd::OverflowPolicy::Reject;
  evd::EvdService service(eng, sopt);

  auto big = test::random_symmetric<float>(256, 9);
  evd::RequestOptions ropt;
  ropt.evd.vectors = true;
  auto id1 = service.submit(big.view(), ropt);
  ASSERT_TRUE(id1.ok());
  auto small = test::random_symmetric<float>(8, 10);
  auto id2 = service.submit(small.view(), {});
  ASSERT_FALSE(id2.ok());
  EXPECT_EQ(id2.status().code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(service.stats().rejected, 1);

  evd::RequestResult r1 = service.wait(*id1);
  EXPECT_TRUE(r1.status.ok());
  // The slot freed: admission works again.
  auto id3 = service.submit(small.view(), {});
  ASSERT_TRUE(id3.ok());
  EXPECT_TRUE(service.wait(*id3).status.ok());
}

// Block policy: submission throttles instead of failing; everything lands.
TEST_F(ServiceTest, BlockPolicyCompletesEveryRequest) {
  tc::Fp32Engine eng;
  evd::ServiceOptions sopt;
  sopt.num_threads = 2;
  sopt.max_in_flight = 2;
  sopt.overflow = evd::OverflowPolicy::Block;
  evd::EvdService service(eng, sopt);

  std::vector<Matrix<float>> mats;
  for (int i = 0; i < 12; ++i) mats.push_back(test::random_symmetric<float>(48, 100 + i));
  std::vector<evd::RequestId> ids;
  for (int i = 0; i < 12; ++i) {
    // With max_in_flight == 2 most of these submits block until a worker
    // finishes an earlier request; none may fail.
    auto id = service.submit(mats[static_cast<std::size_t>(i)].view(), {});
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(*id);
    evd::RequestResult r = service.wait(*id);  // claim as we go: frees the slot
    EXPECT_TRUE(r.status.ok()) << "request " << i;
  }
  EXPECT_EQ(service.stats().completed, 12);
  EXPECT_EQ(service.stats().rejected, 0);
}

// A request whose deadline expires while a higher-priority solve occupies the
// only worker fails with DeadlineExceeded at the next stage boundary instead
// of running late.
TEST_F(ServiceTest, DeadlineExpiresBehindHigherPriorityWork) {
  tc::Fp32Engine eng;
  evd::ServiceOptions sopt;
  sopt.num_threads = 1;
  sopt.max_started = 1;
  evd::EvdService service(eng, sopt);

  auto blocker_mat = test::random_symmetric<float>(256, 21);
  evd::RequestOptions blocker;
  blocker.evd.vectors = true;
  blocker.priority = 1;
  auto blocker_id = service.submit(blocker_mat.view(), blocker);
  ASSERT_TRUE(blocker_id.ok());

  auto doomed_mat = test::random_symmetric<float>(32, 22);
  evd::RequestOptions doomed;
  doomed.priority = 0;
  doomed.deadline_s = 1e-4;  // the blocker takes orders of magnitude longer
  auto doomed_id = service.submit(doomed_mat.view(), doomed);
  ASSERT_TRUE(doomed_id.ok());

  evd::RequestResult doomed_res = service.wait(*doomed_id);
  EXPECT_EQ(doomed_res.status.code(), ErrorCode::DeadlineExceeded);
  EXPECT_TRUE(service.wait(*blocker_id).status.ok());
  EXPECT_EQ(service.stats().deadline_expired, 1);
}

// With one worker pinned by a long blocker, later-submitted higher-priority
// work must complete before earlier lower-priority work.
TEST_F(ServiceTest, PriorityOrdersExecutionAtStageBoundaries) {
  tc::Fp32Engine eng;
  evd::ServiceOptions sopt;
  sopt.num_threads = 1;
  sopt.max_started = 1;
  evd::EvdService service(eng, sopt);

  auto blocker_mat = test::random_symmetric<float>(192, 31);
  evd::RequestOptions blocker;
  blocker.evd.vectors = true;
  blocker.priority = 10;
  auto blocker_id = service.submit(blocker_mat.view(), blocker);
  ASSERT_TRUE(blocker_id.ok());

  auto low_mat = test::random_symmetric<float>(24, 32);
  evd::RequestOptions low;
  low.priority = 0;
  auto low_id = service.submit(low_mat.view(), low);
  ASSERT_TRUE(low_id.ok());

  auto high_mat = test::random_symmetric<float>(24, 33);
  evd::RequestOptions high;
  high.priority = 5;
  auto high_id = service.submit(high_mat.view(), high);
  ASSERT_TRUE(high_id.ok());

  evd::RequestResult low_res = service.wait(*low_id);
  evd::RequestResult high_res = service.wait(*high_id);
  ASSERT_TRUE(low_res.status.ok());
  ASSERT_TRUE(high_res.status.ok());
  EXPECT_LT(high_res.completion_seq, low_res.completion_seq)
      << "priority 5 must finish before priority 0 on a single worker";
  EXPECT_TRUE(service.wait(*blocker_id).status.ok());
}

// The service's aggregate telemetry carries the new tiers: service.queue and
// service.stage.* as both throughput stages and latency histograms, plus the
// per-problem evd.* stages from the pooled contexts.
TEST_F(ServiceTest, TelemetryRecordsQueueAndStageTiers) {
  tc::Fp32Engine eng;
  evd::ServiceOptions sopt;
  sopt.num_threads = 2;
  evd::EvdService service(eng, sopt);
  const int count = 4;
  std::vector<Matrix<float>> mats;
  for (int i = 0; i < count; ++i) mats.push_back(test::random_symmetric<float>(64, 200 + i));
  std::vector<evd::RequestId> ids;
  for (int i = 0; i < count; ++i) {
    auto id = service.submit(mats[static_cast<std::size_t>(i)].view(), {});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  service.wait_all();
  Telemetry t = service.telemetry_snapshot();

  auto stage_calls = [&](const char* name) {
    long calls = 0;
    for (const auto& s : t.stages())
      if (s.name == name) calls = s.calls;
    return calls;
  };
  EXPECT_EQ(stage_calls("service.queue"), count);
  EXPECT_EQ(stage_calls("service.stage.reduction"), count);
  EXPECT_EQ(stage_calls("service.stage.bulge"), count);
  EXPECT_EQ(stage_calls("service.stage.solver"), count);
  // Per-problem pipeline stages arrive via the pooled contexts.
  EXPECT_EQ(stage_calls("evd.reduction"), count);
  EXPECT_EQ(stage_calls("evd.solver"), count);

  bool found_solver_latency = false;
  for (const auto& l : t.latencies())
    if (l.name == "service.stage.solver") {
      found_solver_latency = true;
      EXPECT_EQ(l.count, count);
      EXPECT_GT(l.max_s, 0.0);
    }
  EXPECT_TRUE(found_solver_latency);
  EXPECT_GT(t.latency_quantile("service.stage.solver", 0.5), 0.0);
  EXPECT_GT(t.latency_quantile("service.queue", 0.99), 0.0);

  for (int i = 0; i < count; ++i) (void)service.wait(ids[static_cast<std::size_t>(i)]);
}

// Fault isolation, ABFT tier: with gemm.tile_corrupt armed, ABFT-protected
// streamed requests detect and recompute the corrupted tiles, and every
// result stays bitwise-identical to the fault-free sequential solve.
TEST_F(ServiceTest, AbftRecoversTileCorruptionBitwiseInStream) {
  tc::TcEngine eng;
  const int count = 6;
  evd::RequestOptions ropt;
  ropt.evd.bandwidth = 8;
  ropt.evd.big_block = 32;
  ropt.evd.vectors = true;
  ropt.evd.abft = true;

  std::vector<Matrix<float>> mats;
  for (int i = 0; i < count; ++i) mats.push_back(test::random_symmetric<float>(64, 300 + i));
  // Fault-free references first (the fault budget is process-global).
  std::vector<evd::EvdResult> want;
  for (int i = 0; i < count; ++i) {
    Context ref_ctx(eng);
    auto r = evd::solve(mats[static_cast<std::size_t>(i)].view(), ref_ctx, ropt.evd);
    ASSERT_TRUE(r.ok());
    want.push_back(std::move(*r));
  }

  fault::arm(fault::Site::GemmTileCorrupt, 4);  // bites whichever requests run first
  evd::ServiceOptions sopt;
  sopt.num_threads = 3;
  evd::EvdService service(eng, sopt);
  std::vector<evd::RequestId> ids;
  for (int i = 0; i < count; ++i) {
    auto id = service.submit(mats[static_cast<std::size_t>(i)].view(), ropt);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  int recovered = 0;
  for (int i = 0; i < count; ++i) {
    evd::RequestResult got = service.wait(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(got.status.ok()) << got.status.to_string();
    expect_bitwise_equal(got.eigenvalues, want[static_cast<std::size_t>(i)].eigenvalues,
                         "abft stream");
    expect_bitwise_equal(got.vectors, want[static_cast<std::size_t>(i)].vectors,
                         "abft stream");
    for (const RecoveryEvent& ev : got.recovery)
      if (ev.site == "blas.abft") ++recovered;
  }
  EXPECT_EQ(fault::fired(fault::Site::GemmTileCorrupt), 4);
  EXPECT_GE(recovered, 1) << "at least one request must have logged an ABFT recompute";
}

// Fault isolation, verification tier: one injected residual breach escalates
// exactly one request to a better engine; its neighbors verify cleanly and
// stay bitwise-identical to their sequential solves.
TEST_F(ServiceTest, VerifyEscalationStaysIsolatedPerRequest) {
  tc::TcEngine eng;
  const int count = 6;
  evd::RequestOptions ropt;
  ropt.evd.bandwidth = 8;
  ropt.evd.big_block = 32;
  ropt.evd.vectors = true;
  ropt.evd.verify = verify::Policy::EstimateEscalate;

  std::vector<Matrix<float>> mats;
  for (int i = 0; i < count; ++i) mats.push_back(test::random_symmetric<float>(48, 400 + i));
  std::vector<evd::EvdResult> want;
  for (int i = 0; i < count; ++i) {
    Context ref_ctx(eng);
    auto r = evd::solve(mats[static_cast<std::size_t>(i)].view(), ref_ctx, ropt.evd);
    ASSERT_TRUE(r.ok());
    want.push_back(std::move(*r));
  }

  fault::arm(fault::Site::VerifyResidual, 1);
  evd::ServiceOptions sopt;
  sopt.num_threads = 2;
  evd::EvdService service(eng, sopt);
  std::vector<evd::RequestId> ids;
  for (int i = 0; i < count; ++i) {
    auto id = service.submit(mats[static_cast<std::size_t>(i)].view(), ropt);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  int escalated = 0;
  for (int i = 0; i < count; ++i) {
    evd::RequestResult got = service.wait(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(got.status.ok()) << got.status.to_string();
    EXPECT_TRUE(got.verify.checked);
    EXPECT_TRUE(got.verify.passed);
    if (got.verify.escalations > 0) {
      ++escalated;
    } else {
      expect_bitwise_equal(got.eigenvalues, want[static_cast<std::size_t>(i)].eigenvalues,
                           "unescalated request");
      expect_bitwise_equal(got.vectors, want[static_cast<std::size_t>(i)].vectors,
                           "unescalated request");
    }
  }
  EXPECT_EQ(escalated, 1) << "exactly one request absorbs the injected breach";
}

// Steady-state allocation parity: once slots, contexts, and telemetry tables
// are warm, every round of a homogeneous stream performs exactly the same
// number of heap allocations — nothing (queues, pools, histograms) grows per
// request. Arena stability is asserted through the pooled-context count.
TEST_F(ServiceTest, SteadyStateStreamHasAllocationParityAcrossRounds) {
  tc::Fp32Engine eng;
  evd::ServiceOptions sopt;
  sopt.num_threads = 2;
  sopt.max_started = 2;  // context pool holds exactly the live set
  sopt.max_idle_contexts_per_class = 2;
  sopt.max_in_flight = 64;
  evd::EvdService service(eng, sopt);

  const int per_round = 24;
  evd::RequestOptions ropt;
  ropt.evd.bandwidth = 8;
  ropt.evd.big_block = 32;
  ropt.evd.vectors = true;
  std::vector<Matrix<float>> mats;
  for (int i = 0; i < per_round; ++i)
    mats.push_back(test::random_symmetric<float>(64, 500 + i));
  std::vector<evd::RequestId> ids(static_cast<std::size_t>(per_round), 0);

  auto run_round = [&]() -> std::uint64_t {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < per_round; ++i)
      ids[static_cast<std::size_t>(i)] =
          *service.submit(mats[static_cast<std::size_t>(i)].view(), ropt);
    for (int i = 0; i < per_round; ++i) {
      evd::RequestResult r = service.wait(ids[static_cast<std::size_t>(i)]);
      if (!r.status.ok()) ADD_FAILURE() << r.status.to_string();
    }
    return g_heap_allocs.load(std::memory_order_relaxed) - before;
  };

  run_round();  // warm-up: slots, contexts, telemetry tables, vector capacities
  run_round();  // second warm-up: late context creation, histogram entries
  const std::size_t pooled = service.stats().pooled_contexts;
  const std::uint64_t round_a = run_round();
  const std::uint64_t round_b = run_round();
  EXPECT_EQ(round_a, round_b)
      << "steady-state rounds must allocate identically (something grows per request)";
  EXPECT_EQ(service.stats().pooled_contexts, pooled)
      << "steady-state rounds must not found new contexts";
}

// Soak: a few hundred mixed requests (size, options, priority) through a
// small pool; everything completes, spot checks stay bitwise-correct. The
// TSan CI leg scales this shape up via bench_service.
TEST_F(ServiceTest, SoakMixedStreamCompletesAndSpotChecksBitwise) {
  int count = 240;
  if (const char* env = std::getenv("TCEVD_SERVICE_SOAK_REQUESTS"))
    count = std::max(1, std::atoi(env));
  tc::Fp32Engine eng;
  evd::ServiceOptions sopt;
  sopt.num_threads = 4;
  sopt.max_in_flight = 64;
  evd::EvdService service(eng, sopt);

  const std::vector<index_t> sizes{1, 16, 24, 32, 48};
  std::vector<Matrix<float>> mats;
  std::vector<evd::RequestOptions> opts;
  mats.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const index_t n = sizes[static_cast<std::size_t>(i) % sizes.size()];
    mats.push_back(test::random_symmetric<float>(n, 900 + static_cast<std::uint64_t>(i)));
    evd::RequestOptions ropt;
    ropt.evd.bandwidth = 8;
    ropt.evd.big_block = 32;
    ropt.evd.vectors = (i % 3 == 0);
    ropt.priority = i % 5;
    opts.push_back(ropt);
  }

  std::vector<evd::RequestId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto id = service.submit(mats[static_cast<std::size_t>(i)].view(),
                             opts[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(*id);
  }
  for (int i = 0; i < count; ++i) {
    evd::RequestResult got = service.wait(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(got.status.ok()) << "request " << i << ": " << got.status.to_string();
    if (i % 37 == 0) {
      Context ref_ctx(eng);
      auto want = evd::solve(mats[static_cast<std::size_t>(i)].view(), ref_ctx,
                             opts[static_cast<std::size_t>(i)].evd);
      ASSERT_TRUE(want.ok());
      expect_bitwise_equal(got.eigenvalues, want->eigenvalues, "soak spot check");
    }
  }
  const evd::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, count);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.deadline_expired, 0);
}

}  // namespace
}  // namespace tcevd
