// Divide & conquer tridiagonal eigensolver vs steqr/bisection, including
// deflation-heavy spectra and eigenvector orthogonality on clusters.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/lapack/secular.hpp"
#include "src/lapack/tridiag.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

Matrix<double> dense_tridiag(const std::vector<double>& d, const std::vector<double>& e) {
  const index_t n = static_cast<index_t>(d.size());
  Matrix<double> t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[static_cast<std::size_t>(i)];
    if (i + 1 < n) {
      t(i + 1, i) = e[static_cast<std::size_t>(i)];
      t(i, i + 1) = e[static_cast<std::size_t>(i)];
    }
  }
  return t;
}

void check_eigensystem(const std::vector<double>& d0, const std::vector<double>& e0,
                       double tol) {
  const index_t n = static_cast<index_t>(d0.size());
  auto d = d0;
  auto e = e0;
  Matrix<double> z(n, n);
  set_identity(z.view());
  auto zv = z.view();
  ASSERT_TRUE(lapack::stedc<double>(d, e, &zv).ok());

  // Ascending.
  for (index_t i = 1; i < n; ++i)
    EXPECT_LE(d[static_cast<std::size_t>(i - 1)], d[static_cast<std::size_t>(i)] + 1e-14);

  // Orthogonal eigenvectors.
  EXPECT_LT(orthogonality_residual<double>(z.view()), tol * n);

  // Residual T z = z diag(d).
  auto t = dense_tridiag(d0, e0);
  Matrix<double> tz(n, n);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, t.view(), z.view(), 0.0, tz.view());
  double scale = std::max(1.0, max_abs<double>(t.view()));
  double max_err = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      max_err = std::max(max_err, std::abs(tz(i, j) - d[static_cast<std::size_t>(j)] * z(i, j)));
  EXPECT_LT(max_err / scale, tol);

  // Eigenvalues cross-checked against implicit QL.
  auto ds = d0;
  auto es = e0;
  ASSERT_TRUE(lapack::steqr<double>(ds, es, nullptr).ok());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], ds[static_cast<std::size_t>(i)], tol * scale);
}

class StedcRandomTest : public ::testing::TestWithParam<index_t> {};

TEST_P(StedcRandomTest, RandomTridiagonal) {
  const index_t n = GetParam();
  Rng rng(1000 + n);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
  for (auto& v : d) v = rng.normal();
  for (auto& v : e) v = rng.normal();
  check_eigensystem(d, e, 1e-11);
}

// Sizes straddle the D&C base case (32) and force 1-3 merge levels.
INSTANTIATE_TEST_SUITE_P(Sizes, StedcRandomTest,
                         ::testing::Values<index_t>(1, 2, 16, 33, 40, 64, 65, 100, 150, 256));

TEST(Stedc, LaplacianKnownSpectrum) {
  const index_t n = 120;
  std::vector<double> d(static_cast<std::size_t>(n), 2.0);
  std::vector<double> e(static_cast<std::size_t>(n - 1), -1.0);
  auto dc = d;
  auto ec = e;
  ASSERT_TRUE(lapack::stedc<double>(dc, ec, nullptr).ok());
  for (index_t k = 1; k <= n; ++k) {
    const double ref = 2.0 - 2.0 * std::cos(k * M_PI / (n + 1));
    EXPECT_NEAR(dc[static_cast<std::size_t>(k - 1)], ref, 1e-12);
  }
}

TEST(Stedc, MassiveDeflationIdenticalDiagonal) {
  // d = const, e = tiny: nearly everything deflates at every merge.
  const index_t n = 90;
  std::vector<double> d(static_cast<std::size_t>(n), 4.0);
  std::vector<double> e(static_cast<std::size_t>(n - 1), 1e-14);
  check_eigensystem(d, e, 1e-11);
}

TEST(Stedc, ClusteredSpectrumKeepsOrthogonality) {
  // Tridiagonal whose eigenvalues form two tight clusters: a hard case for
  // naive eigenvector formulas; Gu-Eisenstat must keep Z orthogonal.
  const index_t n = 80;
  Rng rng(7);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  for (index_t i = 0; i < n; ++i)
    d[static_cast<std::size_t>(i)] = (i < n / 2 ? 1.0 : 2.0) + 1e-10 * rng.normal();
  for (auto& v : e) v = 1e-8 * rng.normal();
  check_eigensystem(d, e, 1e-10);
}

TEST(Stedc, ZeroCouplingDecouples) {
  // e[m-1] == 0 at the tear point: halves must be solved independently.
  const index_t n = 66;
  Rng rng(9);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  for (auto& v : d) v = rng.normal();
  for (auto& v : e) v = rng.normal();
  e[static_cast<std::size_t>(n / 2 - 1)] = 0.0;
  check_eigensystem(d, e, 1e-11);
}

TEST(Stedc, NegativeCouplingHandled) {
  const index_t n = 48;
  std::vector<double> d(static_cast<std::size_t>(n), 1.0);
  std::vector<double> e(static_cast<std::size_t>(n - 1), -0.75);  // all negative
  check_eigensystem(d, e, 1e-11);
}

TEST(Stedc, WideDynamicRange) {
  const index_t n = 70;
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  Rng rng(13);
  for (index_t i = 0; i < n; ++i)
    d[static_cast<std::size_t>(i)] = rng.normal() * std::pow(10.0, rng.uniform(-6.0, 6.0));
  for (auto& v : e) v = rng.normal();
  check_eigensystem(d, e, 1e-9);
}

TEST(Stedc, FloatInterfaceConverts) {
  const index_t n = 50;
  std::vector<float> d(static_cast<std::size_t>(n), 2.0f);
  std::vector<float> e(static_cast<std::size_t>(n - 1), -1.0f);
  Matrix<float> z(n, n);
  set_identity(z.view());
  auto zv = z.view();
  ASSERT_TRUE(lapack::stedc<float>(d, e, &zv).ok());
  EXPECT_LT(orthogonality_residual<float>(z.view()), 1e-4);
  for (index_t k = 1; k <= n; ++k) {
    const double ref = 2.0 - 2.0 * std::cos(k * M_PI / (n + 1));
    EXPECT_NEAR(d[static_cast<std::size_t>(k - 1)], ref, 1e-5);
  }
}

TEST(Secular, RootsInteriorToIntervals) {
  std::vector<double> d{0.0, 1.0, 2.0, 5.0};
  std::vector<double> wsq{0.1, 0.2, 0.3, 0.4};
  for (index_t j = 0; j < 4; ++j) {
    const auto r = lapack::secular_solve(d, wsq, 1.0, j);
    const double lam =
        d[static_cast<std::size_t>(r.anchor)] + static_cast<double>(r.offset);
    EXPECT_GT(lam, d[static_cast<std::size_t>(j)]);
    if (j < 3) {
      EXPECT_LT(lam, d[static_cast<std::size_t>(j + 1)]);
    }
    // Verify it is actually a root.
    long double f = 1.0L;
    for (index_t i = 0; i < 4; ++i)
      f += wsq[static_cast<std::size_t>(i)] /
           ((static_cast<long double>(d[static_cast<std::size_t>(i)]) -
             static_cast<long double>(d[static_cast<std::size_t>(r.anchor)])) -
            r.offset);
    EXPECT_LT(std::abs(static_cast<double>(f)), 1e-10);
  }
}

TEST(Secular, InterlacingAndTraceIdentity) {
  // Sum of roots == sum of poles + sum of weights (trace of D + w w^T).
  const index_t k = 12;
  Rng rng(21);
  std::vector<double> d(static_cast<std::size_t>(k));
  std::vector<double> wsq(static_cast<std::size_t>(k));
  double x = 0.0;
  for (index_t i = 0; i < k; ++i) {
    x += 0.5 + rng.uniform();
    d[static_cast<std::size_t>(i)] = x;
    wsq[static_cast<std::size_t>(i)] = 0.01 + rng.uniform();
  }
  double trace_expected = 0.0;
  for (index_t i = 0; i < k; ++i)
    trace_expected += d[static_cast<std::size_t>(i)] + wsq[static_cast<std::size_t>(i)];
  double trace = 0.0;
  for (index_t j = 0; j < k; ++j) {
    const auto r = lapack::secular_solve(d, wsq, 1.0, j);
    trace += d[static_cast<std::size_t>(r.anchor)] + static_cast<double>(r.offset);
  }
  EXPECT_NEAR(trace, trace_expected, 1e-9);
}

TEST(Secular, TinyWeightRootHugsPole) {
  std::vector<double> d{0.0, 1.0};
  std::vector<double> wsq{1e-18, 1e-18};
  const auto r = lapack::secular_solve(d, wsq, 1.0, 0);
  const double lam = d[static_cast<std::size_t>(r.anchor)] + static_cast<double>(r.offset);
  EXPECT_NEAR(lam, 1e-18, 1e-19);  // lambda ~ d0 + w0^2
}

}  // namespace
}  // namespace tcevd
