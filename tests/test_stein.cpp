// Inverse iteration (stein) for tridiagonal eigenvectors.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/norms.hpp"
#include "src/lapack/stein.hpp"
#include "src/lapack/tridiag.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

void check_eigenvectors(const std::vector<double>& d, const std::vector<double>& e,
                        const std::vector<double>& eigs, ConstMatrixView<double> z,
                        double tol) {
  const index_t n = static_cast<index_t>(d.size());
  const index_t nev = static_cast<index_t>(eigs.size());
  double scale = 0.0;
  for (double v : d) scale = std::max(scale, std::abs(v));
  for (double v : e) scale = std::max(scale, std::abs(v));
  for (index_t j = 0; j < nev; ++j) {
    // ||T z - lambda z||
    double worst = 0.0;
    for (index_t i = 0; i < n; ++i) {
      double tz = d[static_cast<std::size_t>(i)] * z(i, j);
      if (i > 0) tz += e[static_cast<std::size_t>(i - 1)] * z(i - 1, j);
      if (i + 1 < n) tz += e[static_cast<std::size_t>(i)] * z(i + 1, j);
      worst = std::max(worst, std::abs(tz - eigs[static_cast<std::size_t>(j)] * z(i, j)));
    }
    EXPECT_LT(worst / std::max(scale, 1.0), tol) << "vector " << j;
  }
  EXPECT_LT(orthogonality_residual<double>(z), tol * n);
}

TEST(Stein, AllEigenvectorsOfRandomTridiagonal) {
  const index_t n = 80;
  Rng rng(1);
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1));
  for (auto& v : d) v = rng.normal();
  for (auto& v : e) v = rng.normal();
  auto eigs = lapack::stebz<double>(d, e, 0, n - 1, 1e-14);
  Matrix<double> z(n, n);
  ASSERT_TRUE(lapack::stein<double>(d, e, eigs, z.view()).ok());
  check_eigenvectors(d, e, eigs, z.view(), 1e-10);
}

TEST(Stein, SelectedSubset) {
  const index_t n = 120;
  std::vector<double> d(static_cast<std::size_t>(n), 2.0);
  std::vector<double> e(static_cast<std::size_t>(n - 1), -1.0);
  auto eigs = lapack::stebz<double>(d, e, 10, 19, 1e-14);
  Matrix<double> z(n, 10);
  ASSERT_TRUE(lapack::stein<double>(d, e, eigs, z.view()).ok());
  check_eigenvectors(d, e, eigs, z.view(), 1e-10);
  // Laplacian eigenvector k is sin((k+1) pi i / (n+1)): check index 10's
  // sign-change count (= index).
  index_t changes = 0;
  for (index_t i = 1; i < n; ++i)
    if ((z(i, 0) > 0) != (z(i - 1, 0) > 0)) ++changes;
  EXPECT_EQ(changes, 10);
}

TEST(Stein, ClusteredEigenvaluesStayOrthogonal) {
  // Near-degenerate pair: inverse iteration needs the reorthogonalization.
  const index_t n = 60;
  Rng rng(3);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  for (index_t i = 0; i < n; ++i)
    d[static_cast<std::size_t>(i)] = (i % 2 == 0 ? 1.0 : 3.0) + 1e-12 * rng.normal();
  for (auto& v : e) v = 1e-10 * rng.normal();
  auto eigs = lapack::stebz<double>(d, e, 0, n - 1, 1e-15);
  Matrix<double> z(n, n);
  ASSERT_TRUE(lapack::stein<double>(d, e, eigs, z.view()).ok());
  EXPECT_LT(orthogonality_residual<double>(z.view()), 1e-8 * n);
}

TEST(Stein, MatchesSteqrUpToSign) {
  const index_t n = 40;
  Rng rng(5);
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1));
  for (auto& v : d) v = rng.normal();
  for (auto& v : e) v = rng.normal();

  auto eigs = lapack::stebz<double>(d, e, 0, n - 1, 1e-14);
  Matrix<double> z1(n, n);
  ASSERT_TRUE(lapack::stein<double>(d, e, eigs, z1.view()).ok());

  auto d2 = d;
  auto e2 = e;
  Matrix<double> z2(n, n);
  set_identity(z2.view());
  auto z2v = z2.view();
  ASSERT_TRUE(lapack::steqr<double>(d2, e2, &z2v).ok());

  for (index_t j = 0; j < n; ++j) {
    double dot = 0.0;
    for (index_t i = 0; i < n; ++i) dot += z1(i, j) * z2(i, j);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-8) << "column " << j;
  }
}

TEST(Stein, FloatPrecision) {
  const index_t n = 50;
  std::vector<float> d(static_cast<std::size_t>(n), 2.0f);
  std::vector<float> e(static_cast<std::size_t>(n - 1), -1.0f);
  auto eigs = lapack::stebz<float>(d, e, 0, 4);
  Matrix<float> z(n, 5);
  ASSERT_TRUE(lapack::stein<float>(d, e, eigs, z.view()).ok());
  EXPECT_LT(orthogonality_residual<float>(z.view()), 1e-4);
}

}  // namespace
}  // namespace tcevd
