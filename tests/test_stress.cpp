// Concurrency stress layer (ctest label: stress; run in the sanitizer CI
// jobs and locally under -DTCEVD_SANITIZE=thread): many threads hammering
// ONE shared GemmEngine through independent per-thread Contexts.
//
// This pins the library's thread-safety contract — engines are stateless per
// call (their one diagnostic counter is atomic) and shareable, while every
// piece of per-solve mutable state (workspace arena, telemetry, recovery
// scope) lives on a thread-private Context. The pre-PR-2 design recorded
// GEMM shapes on the engine itself; this test's shared-engine +
// recording-contexts pattern is exactly the workload that raced there and
// would catch a regression to engine-held state.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <deque>
#include <string>

#include "src/blas/blas.hpp"
#include "src/blas/gemm_threading.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/bulge/bulge_wavefront.hpp"
#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/evd/batch.hpp"
#include "src/evd/evd.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tensorcore/engine.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

constexpr int kThreads = 8;

// Randomized problem shape: n in [16, 80], band half-width b, big block nb a
// multiple of b — deliberately including odd n and n not divisible by nb.
struct Shape {
  index_t n, b, nb;
};

Shape random_shape(Rng& rng) {
  Shape s;
  s.n = 16 + static_cast<index_t>(rng.bounded(65));
  const index_t bs[] = {2, 4, 8, 16};
  s.b = bs[static_cast<std::size_t>(rng.bounded(4))];
  s.nb = s.b * static_cast<index_t>(1 + rng.bounded(4));
  return s;
}

// ---------------------------------------------------------------------------
// 8 threads x 1 shared engine x per-thread Contexts, full EVD pipeline.
// ---------------------------------------------------------------------------

class SharedEngineStress : public ::testing::TestWithParam<const char*> {};

TEST_P(SharedEngineStress, ConcurrentSolvesOnOneEngineStayCorrect) {
  const std::string which = GetParam();
  tc::Fp32Engine fp32;
  tc::TcEngine tcfp16(tc::TcPrecision::Fp16);
  tc::EcTcEngine ectc(tc::TcPrecision::Fp16);
  tc::GemmEngine& engine = which == "fp32" ? static_cast<tc::GemmEngine&>(fp32)
                           : which == "tc" ? static_cast<tc::GemmEngine&>(tcfp16)
                                           : static_cast<tc::GemmEngine&>(ectc);

  const long tasks = 48;
  std::atomic<long> failures{0};
  ThreadPool pool(kThreads);
  pool.parallel_for(tasks, [&](int /*worker*/, long i) {
    // Fresh Context per task (not per worker) to also stress construction /
    // teardown interleaving against the shared engine.
    Rng rng(0x5EED0000u + static_cast<std::uint64_t>(i));
    const Shape s = random_shape(rng);
    Matrix<float> a(s.n, s.n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());

    double trace = 0.0;
    for (index_t k = 0; k < s.n; ++k) trace += a(k, k);

    Context ctx(engine);
    ctx.telemetry().set_recording(true);  // per-context recording must not race
    evd::EvdOptions opt;
    opt.bandwidth = s.b;
    opt.big_block = s.nb;
    opt.vectors = (i % 3 == 0);
    // Half the tasks run the overlapped look-ahead schedule, so the TSan CI
    // job sees the run_pair window (sibling arena + split telemetry) under
    // shared-engine contention.
    opt.lookahead = (i % 2 == 0);
    auto res = evd::solve(a.view(), ctx, opt);
    if (!res.ok() || !res->converged) {
      failures.fetch_add(1);
      return;
    }
    // Cheap per-task invariant: eigenvalue sum == trace.
    double sum = 0.0;
    for (float v : res->eigenvalues) sum += v;
    if (std::abs(sum - trace) > 1e-2 * std::max(1.0, std::abs(trace)) + 1e-2 * s.n)
      failures.fetch_add(1);
    if (ctx.telemetry().recorded().empty()) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Engines, SharedEngineStress,
                         ::testing::Values("fp32", "tc", "ectc"));

// ---------------------------------------------------------------------------
// Long-lived per-worker Contexts reused across many randomized SBR shapes:
// the "one context per thread" contract under arena reuse.
// ---------------------------------------------------------------------------

TEST(SharedEngineStressFixture, ReusedContextsAcrossRandomSbrShapes) {
  tc::EcTcEngine engine;
  ThreadPool pool(kThreads);
  std::atomic<long> failures{0};

  // One Context per worker, built up front and reused for every task that
  // worker steals — the exact shape of the batched driver's inner loop.
  std::deque<Context> contexts;
  for (int w = 0; w < kThreads; ++w) contexts.emplace_back(engine);

  const long tasks = 64;
  pool.parallel_for(tasks, [&](int worker, long i) {
    Rng rng(0xABCD0000u + static_cast<std::uint64_t>(i));
    const Shape s = random_shape(rng);
    Matrix<float> a(s.n, s.n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());

    Context& ctx = contexts[static_cast<std::size_t>(worker)];
    sbr::SbrOptions opt;
    opt.bandwidth = std::min<index_t>(s.b, s.n - 1);
    opt.big_block = std::max<index_t>(s.nb, opt.bandwidth);
    opt.big_block -= opt.big_block % opt.bandwidth;
    opt.lookahead = (i % 2 == 0);  // exercise the overlap window under TSan
    auto res = sbr::sbr_wy(a.view(), ctx, opt);
    if (!res.ok()) {
      failures.fetch_add(1);
      return;
    }
    // Band postcondition + orthogonal-similarity norm preservation.
    if (sbr::band_violation<float>(res->band.view(), opt.bandwidth) != 0.0)
      failures.fetch_add(1);
    const double fa = frobenius_norm<float>(a.view());
    if (std::abs(frobenius_norm<float>(res->band.view()) - fa) > 1e-3 * fa)
      failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);

  // Every worker context closed all its scopes.
  for (Context& ctx : contexts) EXPECT_EQ(ctx.workspace().bytes_in_use(), 0u);
}

// ---------------------------------------------------------------------------
// solve_many itself under thread churn: repeated batches on one engine, with
// the shared EC-TC fallback counter read concurrently.
// ---------------------------------------------------------------------------

TEST(SharedEngineStressFixture, RepeatedBatchesKeepEngineConsistent) {
  tc::EcTcEngine engine;
  const index_t n = 40;
  std::vector<Matrix<float>> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(test::random_symmetric<float>(n, 7100 + i));

  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 8;
  bopt.evd.big_block = 16;
  bopt.num_threads = kThreads;

  std::vector<float> first;
  for (int round = 0; round < 3; ++round) {
    auto res = evd::solve_many(batch, engine, bopt);
    ASSERT_TRUE(res.all_ok()) << "round " << round;
    if (round == 0) {
      first = res.problems[0].eigenvalues;
    } else {
      // Shared-engine state must not leak between rounds: bitwise identical.
      for (std::size_t j = 0; j < first.size(); ++j)
        EXPECT_EQ(res.problems[0].eigenvalues[j], first[j]) << "round " << round;
    }
    EXPECT_GE(engine.fp32_fallbacks(), 0L);  // concurrent-read smoke check
  }
}

// ---------------------------------------------------------------------------
// Nested-oversubscription guard: while a batch (or any pool worker) is
// running solves, the GEMMs inside them must take the serial tile loop
// instead of fanning out on gemm_pool — the batch pool owns the machine at
// its level. The toggle contrast: the same large GEMM issued from the main
// thread afterwards DOES dispatch to gemm_pool.
// ---------------------------------------------------------------------------

TEST(SharedEngineStressFixture, GemmPoolStandsDownUnderBatchWorkers) {
  tc::Fp32Engine engine;
  const index_t n = 200;  // big enough that its GEMMs clear the pooling floor
  std::vector<Matrix<float>> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(test::random_symmetric<float>(n, 9200 + i));

  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 16;
  bopt.evd.big_block = 32;
  bopt.evd.lookahead = true;  // cover the run_pair window's stand-down too
  bopt.num_threads = kThreads;

  const auto before = blas::gemm_pool_dispatches();
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(res.all_ok());
  EXPECT_EQ(blas::gemm_pool_dispatches(), before)
      << "a GEMM nested under a batch worker fanned out on gemm_pool";

  // Toggle: the identical shape from the main thread is allowed to pool.
  Matrix<float> c(n, n);
  blas::gemm<float>(blas::Trans::Yes, blas::Trans::No, 1.0f, batch[0].view(),
                    batch[1].view(), 0.0f, c.view());
  EXPECT_GT(blas::gemm_pool_dispatches(), before);
}

// Regression for the stale-worker broadcast race: a worker's final
// exhaustion-probe fetch_add on the claim counter can interleave with the
// NEXT broadcast's setup (gemm_packed issues broadcasts back-to-back with
// varying tile counts per macro block). Before the epoch-stamped ticket, that
// straggler could re-claim an index into the new broadcast (an index run
// twice — silent C-tile corruption), read fn/ctx/count mid-rewrite (UB /
// dead-stack ctx), or over-increment `done` past count (caller hang). The
// hammer below drives thousands of back-to-back broadcasts through one
// oversubscribed pool (more workers than cores, so stragglers get preempted
// mid-probe) with counts alternating between 1 and larger — small counts
// maximize the probe-vs-setup overlap window — and asserts every index of
// every round runs exactly once. Run under TSan in the sanitizer CI leg.
TEST(BroadcastStress, BackToBackBroadcastsRunEachIndexExactlyOnce) {
  ThreadPool pool(2 * kThreads);
  constexpr long kMaxCount = 64;
  constexpr int kRounds = 20000;
  struct Ctx {
    std::atomic<int> hits[kMaxCount];
  };
  // ctx lives on this frame and is re-zeroed per round, mimicking the
  // per-macro-block stack TileCtx in gemm_packed.
  Ctx ctx;
  for (int r = 0; r < kRounds; ++r) {
    const long count = (r % 2 == 0) ? 1 : 1 + (r % kMaxCount);
    for (long i = 0; i < count; ++i) ctx.hits[i].store(0, std::memory_order_relaxed);
    const bool ran = pool.try_broadcast(
        count,
        [](void* c, long i) {
          static_cast<Ctx*>(c)->hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        &ctx);
    ASSERT_TRUE(ran) << "single-caller broadcast reported the pool busy";
    for (long i = 0; i < count; ++i)
      ASSERT_EQ(ctx.hits[i].load(std::memory_order_relaxed), 1)
          << "round " << r << " index " << i << " of " << count;
  }
}

// ---------------------------------------------------------------------------
// Wavefront bulge chasing under contention: repeated chases broadcasting on a
// shared pool while solve_many traffic churns on ANOTHER pool's workers. The
// chase's progress-vector spins, per-chunk release publishes, and the block
// ticket all run with lanes preempted mid-chunk (oversubscribed machine), and
// every chase must still be bitwise-equal to the serial reference. Run under
// TSan in CI — the acquire/release protocol on the progress vector is the
// happens-before spine the whole scheduler leans on.
// ---------------------------------------------------------------------------

TEST(BulgeWavefrontStress, RepeatedChasesUnderConcurrentSolveTraffic) {
  tc::Fp32Engine engine;

  // Background solve_many traffic on its own pool, kept alive for the whole
  // hammer via a submitted task.
  ThreadPool traffic_pool(kThreads / 2);
  std::atomic<bool> stop_traffic{false};
  std::atomic<long> traffic_failures{0};
  traffic_pool.submit([&] {
    std::vector<Matrix<float>> batch;
    for (int i = 0; i < 6; ++i) batch.push_back(test::random_symmetric<float>(36, 4400 + i));
    evd::BatchOptions bopt;
    bopt.evd.bandwidth = 4;
    bopt.evd.big_block = 8;
    bopt.num_threads = 2;
    while (!stop_traffic.load(std::memory_order_relaxed)) {
      auto res = evd::solve_many(batch, engine, bopt);
      if (!res.all_ok()) traffic_failures.fetch_add(1);
    }
  });

  // The chase hammer: one broadcast pool, many back-to-back chases with
  // varying shapes and blocking, each checked bitwise against serial.
  ThreadPool chase_pool(kThreads);
  Context ctx(engine);
  long mismatches = 0;
  for (int round = 0; round < 40; ++round) {
    Rng rng(0xBC0DE000u + static_cast<std::uint64_t>(round));
    const index_t n = 48 + static_cast<index_t>(rng.bounded(80));
    const index_t bws[] = {2, 3, 8};
    const index_t bw = bws[static_cast<std::size_t>(rng.bounded(3))];
    Matrix<double> a(n, n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());
    sbr::truncate_to_band<double>(a.view(), bw);

    auto serial = a;
    Matrix<double> q_serial(n, n), q_wave(n, n);
    set_identity(q_serial.view());
    set_identity(q_wave.view());
    auto qs = q_serial.view();
    auto ref = bulge::bulge_chase<double>(serial.view(), bw, &qs);

    auto wave = a;
    auto qw = q_wave.view();
    bulge::WavefrontOptions wopt;
    wopt.pool = &chase_pool;
    wopt.sweep_block = 1 + static_cast<index_t>(rng.bounded(8));
    wopt.tile_rows = 1 + static_cast<index_t>(rng.bounded(192));
    auto got = bulge::bulge_chase_wavefront<double>(ctx, wave.view(), bw, &qw, wopt);

    for (std::size_t i = 0; i < ref.d.size(); ++i)
      if (ref.d[i] != got.d[i]) ++mismatches;
    for (std::size_t i = 0; i < ref.e.size(); ++i)
      if (ref.e[i] != got.e[i]) ++mismatches;
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i)
        if (q_serial(i, j) != q_wave(i, j)) ++mismatches;
  }
  stop_traffic.store(true);
  traffic_pool.wait_idle();

  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(traffic_failures.load(), 0);
  EXPECT_EQ(ctx.workspace().bytes_in_use(), 0u);
}

}  // namespace
}  // namespace tcevd
