// SVD drivers: Jacobi reference and the engine-accelerated Gram route.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/common/norms.hpp"
#include "src/svd/svd.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

/// ||A - U diag(s) V^T||_F / ||A||_F in double.
template <typename T>
double svd_residual(ConstMatrixView<T> a, ConstMatrixView<T> u, const std::vector<T>& s,
                    ConstMatrixView<T> v) {
  const index_t m = a.rows(), n = a.cols(), r = static_cast<index_t>(s.size());
  Matrix<double> us(m, r);
  for (index_t j = 0; j < r; ++j)
    for (index_t i = 0; i < m; ++i)
      us(i, j) = double(u(i, j)) * double(s[static_cast<std::size_t>(j)]);
  Matrix<double> vd(n, r), ad(m, n);
  convert_matrix<T, double>(v, vd.view());
  convert_matrix<T, double>(a, ad.view());
  Matrix<double> rec(m, n);
  blas::gemm(Trans::No, Trans::Yes, 1.0, us.view(), vd.view(), 0.0, rec.view());
  return frobenius_diff<double>(rec.view(), ad.view()) / frobenius_norm<double>(ad.view());
}

TEST(JacobiSvd, FactorizesRandomMatrix) {
  const index_t m = 60, n = 25;
  auto a = test::random_matrix(m, n, 1);
  auto res = svd::jacobi_svd(a.view());
  EXPECT_LT(svd_residual<double>(a.view(), res.u.view(), res.sigma, res.v.view()), 1e-13);
  EXPECT_LT(orthogonality_residual<double>(res.u.view()), 1e-12 * m);
  EXPECT_LT(orthogonality_residual<double>(res.v.view()), 1e-12 * n);
  for (index_t i = 1; i < n; ++i)
    EXPECT_GE(res.sigma[static_cast<std::size_t>(i - 1)], res.sigma[static_cast<std::size_t>(i)]);
}

TEST(JacobiSvd, KnownSingularValues) {
  // diag(5, 3, 1) padded with zero rows.
  Matrix<double> a(6, 3);
  a(0, 0) = 5.0;
  a(1, 1) = 3.0;
  a(2, 2) = 1.0;
  auto res = svd::jacobi_svd(a.view());
  EXPECT_NEAR(res.sigma[0], 5.0, 1e-14);
  EXPECT_NEAR(res.sigma[1], 3.0, 1e-14);
  EXPECT_NEAR(res.sigma[2], 1.0, 1e-14);
}

TEST(SvdViaEvd, MatchesJacobiSingularValues) {
  const index_t m = 100, n = 40;
  auto ad = test::random_matrix(m, n, 2);
  Matrix<float> a(m, n);
  convert_matrix<double, float>(ad.view(), a.view());

  tc::Fp32Engine eng;
  Context ctx(eng);
  svd::SvdOptions opt;
  opt.evd.bandwidth = 8;
  opt.evd.big_block = 16;
  auto res = svd::svd_via_evd(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);

  auto ref = svd::jacobi_svd(ad.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.sigma[static_cast<std::size_t>(i)], ref.sigma[static_cast<std::size_t>(i)],
                1e-3 * ref.sigma[0]);
}

TEST(SvdViaEvd, FactorizationResidualAndOrthogonality) {
  const index_t m = 80, n = 32;
  auto a = test::random_matrix_f(m, n, 3);
  tc::Fp32Engine eng;
  Context ctx(eng);
  svd::SvdOptions opt;
  opt.evd.bandwidth = 8;
  opt.evd.big_block = 16;
  auto res = svd::svd_via_evd(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(svd_residual<float>(a.view(), res.u.view(), res.sigma, res.v.view()), 1e-4);
  EXPECT_LT(orthogonality_residual<float>(res.u.view()), 1e-3 * m);
  EXPECT_LT(orthogonality_residual<float>(res.v.view()), 1e-3 * n);
}

TEST(SvdViaEvd, TensorCoreEngine) {
  const index_t m = 96, n = 32;
  auto a = test::random_matrix_f(m, n, 4);
  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  svd::SvdOptions opt;
  opt.evd.bandwidth = 8;
  opt.evd.big_block = 16;
  auto res = svd::svd_via_evd(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  // Gram route squares the condition number; TC numerics: expect ~1e-2.
  EXPECT_LT(svd_residual<float>(a.view(), res.u.view(), res.sigma, res.v.view()), 5e-2);
}

TEST(SvdViaEvd, ValuesOnlyMode) {
  const index_t m = 50, n = 20;
  auto a = test::random_matrix_f(m, n, 5);
  tc::Fp32Engine eng;
  Context ctx(eng);
  svd::SvdOptions opt;
  opt.vectors = false;
  opt.evd.bandwidth = 4;
  auto res = svd::svd_via_evd(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.u.rows(), 0);
  auto ad = Matrix<double>(m, n);
  convert_matrix<float, double>(a.view(), ad.view());
  auto ref = svd::jacobi_svd(ad.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.sigma[static_cast<std::size_t>(i)], ref.sigma[static_cast<std::size_t>(i)],
                1e-3 * ref.sigma[0]);
}

TEST(SvdViaEvd, RankDeficientInput) {
  // Rank-3 matrix: trailing singular values ~0; U must still be orthonormal.
  const index_t m = 60, n = 20, r = 3;
  auto b = test::random_matrix_f(m, r, 6);
  auto c = test::random_matrix_f(r, n, 7);
  Matrix<float> a(m, n);
  blas::gemm(Trans::No, Trans::No, 1.0f, b.view(), c.view(), 0.0f, a.view());

  tc::Fp32Engine eng;
  Context ctx(eng);
  svd::SvdOptions opt;
  opt.evd.bandwidth = 4;
  auto res = svd::svd_via_evd(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  for (index_t i = r; i < n; ++i)
    EXPECT_LT(res.sigma[static_cast<std::size_t>(i)], 1e-2f * res.sigma[0]);
  EXPECT_LT(orthogonality_residual<float>(res.u.view()), 1e-3 * m);
  EXPECT_LT(svd_residual<float>(a.view(), res.u.view(), res.sigma, res.v.view()), 1e-3);
}

}  // namespace
}  // namespace tcevd
