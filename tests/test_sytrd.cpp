// One-stage Householder tridiagonalization.
#include <gtest/gtest.h>

#include <vector>

#include "src/blas/blas.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

/// Assemble the dense tridiagonal from (d, e).
Matrix<double> dense_tridiag(const std::vector<double>& d, const std::vector<double>& e) {
  const index_t n = static_cast<index_t>(d.size());
  Matrix<double> t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[static_cast<std::size_t>(i)];
    if (i + 1 < n) {
      t(i + 1, i) = e[static_cast<std::size_t>(i)];
      t(i, i + 1) = e[static_cast<std::size_t>(i)];
    }
  }
  return t;
}

class SytrdTest : public ::testing::TestWithParam<index_t> {};

TEST_P(SytrdTest, QtAQIsTridiagonal) {
  const index_t n = GetParam();
  auto a = test::random_symmetric<double>(n, 100 + n);
  auto work = a;
  std::vector<double> d, e, tau;
  lapack::sytrd(work.view(), d, e, tau);

  Matrix<double> q(n, n);
  lapack::orgtr<double>(work.view(), tau, q.view());
  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-12 * n);

  // Q^T A Q == T.
  Matrix<double> tmp(n, n), qtaq(n, n);
  blas::gemm(Trans::Yes, Trans::No, 1.0, q.view(), a.view(), 0.0, tmp.view());
  blas::gemm(Trans::No, Trans::No, 1.0, tmp.view(), q.view(), 0.0, qtaq.view());
  auto t = dense_tridiag(d, e);
  EXPECT_LT(test::rel_diff<double>(qtaq.view(), t.view()), 1e-12);
}

TEST_P(SytrdTest, EigenvaluesMatchDirectSolve) {
  const index_t n = GetParam();
  auto a = test::random_symmetric<double>(n, 200 + n);
  auto work = a;
  std::vector<double> d, e, tau;
  lapack::sytrd(work.view(), d, e, tau);
  auto d1 = d;
  auto e1 = e;
  ASSERT_TRUE(lapack::sterf(d1, e1).ok());

  // Reference: bisection directly on the tridiagonal (independent method).
  auto d2 = lapack::stebz<double>(d, e, 0, n - 1, 1e-12);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d1[static_cast<std::size_t>(i)], d2[static_cast<std::size_t>(i)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SytrdTest, ::testing::Values<index_t>(1, 2, 3, 5, 16, 40, 95));

TEST(Sytrd, DiagonalMatrixUntouched) {
  const index_t n = 10;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = static_cast<double>(i + 1);
  std::vector<double> d, e, tau;
  lapack::sytrd(a.view(), d, e, tau);
  for (index_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)], i + 1.0);
  for (index_t i = 0; i + 1 < n; ++i) EXPECT_DOUBLE_EQ(e[static_cast<std::size_t>(i)], 0.0);
}

TEST(Sytrd, AlreadyTridiagonalPreserved) {
  const index_t n = 8;
  Matrix<double> a(n, n);
  Rng rng(9);
  for (index_t i = 0; i < n; ++i) a(i, i) = rng.normal();
  for (index_t i = 0; i + 1 < n; ++i) {
    const double v = rng.normal();
    a(i + 1, i) = v;
    a(i, i + 1) = v;
  }
  auto work = a;
  std::vector<double> d, e, tau;
  lapack::sytrd(work.view(), d, e, tau);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(d[static_cast<std::size_t>(i)], a(i, i), 1e-14);
  // Subdiagonal magnitudes preserved (sign may flip with the reflector).
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_NEAR(std::abs(e[static_cast<std::size_t>(i)]), std::abs(a(i + 1, i)), 1e-13);
}

class SytrdBlockedTest : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(SytrdBlockedTest, MatchesUnblocked) {
  const auto [n, nb] = GetParam();
  auto a = test::random_symmetric<double>(n, 300 + n);
  auto w1 = a;
  auto w2 = a;
  std::vector<double> d1, e1, t1, d2, e2, t2;
  lapack::sytrd(w1.view(), d1, e1, t1);
  lapack::sytrd_blocked(w2.view(), d2, e2, t2, nb);
  // Same reflectors in exact arithmetic: outputs agree to roundoff.
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d1[static_cast<std::size_t>(i)], d2[static_cast<std::size_t>(i)], 1e-11)
        << "n=" << n << " nb=" << nb;
  for (index_t i = 0; i + 1 < n; ++i) {
    EXPECT_NEAR(e1[static_cast<std::size_t>(i)], e2[static_cast<std::size_t>(i)], 1e-11);
    EXPECT_NEAR(t1[static_cast<std::size_t>(i)], t2[static_cast<std::size_t>(i)], 1e-10);
  }
  // Stored reflectors identical too (orgtr must work on either layout).
  EXPECT_LT(test::rel_diff<double>(w1.view(), w2.view()), 1e-10);
}

TEST_P(SytrdBlockedTest, QtAQIsTridiagonal) {
  const auto [n, nb] = GetParam();
  auto a = test::random_symmetric<double>(n, 400 + n);
  auto work = a;
  std::vector<double> d, e, tau;
  lapack::sytrd_blocked(work.view(), d, e, tau, nb);
  Matrix<double> q(n, n);
  lapack::orgtr<double>(work.view(), tau, q.view());
  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-12 * n);
  Matrix<double> tmp(n, n), qtaq(n, n);
  blas::gemm(Trans::Yes, Trans::No, 1.0, q.view(), a.view(), 0.0, tmp.view());
  blas::gemm(Trans::No, Trans::No, 1.0, tmp.view(), q.view(), 0.0, qtaq.view());
  auto t = dense_tridiag(d, e);
  EXPECT_LT(test::rel_diff<double>(qtaq.view(), t.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SytrdBlockedTest,
                         ::testing::Values(std::make_tuple<index_t, index_t>(40, 8),
                                           std::make_tuple<index_t, index_t>(65, 16),
                                           std::make_tuple<index_t, index_t>(100, 32),
                                           std::make_tuple<index_t, index_t>(30, 64),   // nb > n
                                           std::make_tuple<index_t, index_t>(97, 8))); // ragged

TEST(Sytrd, FloatVariantStable) {
  const index_t n = 60;
  auto a = test::random_symmetric<float>(n, 77);
  auto work = a;
  std::vector<float> d, e, tau;
  lapack::sytrd(work.view(), d, e, tau);
  Matrix<float> q(n, n);
  lapack::orgtr<float>(work.view(), tau, q.view());
  EXPECT_LT(orthogonality_residual<float>(q.view()), 1e-4);
}

}  // namespace
}  // namespace tcevd
