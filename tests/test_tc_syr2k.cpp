// Tensor-Core syr2k (future-work extension).
#include <gtest/gtest.h>

#include "src/blas/blas.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "src/tensorcore/tc_syr2k.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;
using blas::Uplo;

TEST(TcSyr2k, MatchesTwoTcGemmsOnLowerTriangle) {
  const index_t n = 48, k = 16;
  auto a = test::random_matrix_f(n, k, 1);
  auto b = test::random_matrix_f(n, k, 2);
  auto c1 = test::random_symmetric<float>(n, 3);
  auto c2 = c1;

  tc::tc_syr2k(Uplo::Lower, -1.0f, a.view(), b.view(), 1.0f, c1.view());
  tc::tc_gemm(Trans::No, Trans::Yes, -1.0f, a.view(), b.view(), 1.0f, c2.view());
  tc::tc_gemm(Trans::No, Trans::Yes, -1.0f, b.view(), a.view(), 1.0f, c2.view());

  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(c1(i, j), c2(i, j), 1e-3 * std::max(1.0f, std::abs(c2(i, j))));
}

TEST(TcSyr2k, UpperTriangleUntouchedInLowerMode) {
  const index_t n = 20, k = 8;
  auto a = test::random_matrix_f(n, k, 4);
  auto b = test::random_matrix_f(n, k, 5);
  auto c = test::random_symmetric<float>(n, 6);
  auto c0 = c;
  tc::tc_syr2k(Uplo::Lower, 1.0f, a.view(), b.view(), 1.0f, c.view());
  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i) EXPECT_EQ(c(i, j), c0(i, j));
}

TEST(TcSyr2k, UpperModeMatchesLowerTransposed) {
  const index_t n = 24, k = 8;
  auto a = test::random_matrix_f(n, k, 7);
  auto b = test::random_matrix_f(n, k, 8);
  Matrix<float> cl(n, n), cu(n, n);
  tc::tc_syr2k(Uplo::Lower, 1.0f, a.view(), b.view(), 0.0f, cl.view());
  tc::tc_syr2k(Uplo::Upper, 1.0f, a.view(), b.view(), 0.0f, cu.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_EQ(cl(i, j), cu(j, i));
}

TEST(TcSyr2k, AccuracyBoundedByHalfEps) {
  const index_t n = 64, k = 32;
  auto a = test::random_matrix_f(n, k, 9);
  auto b = test::random_matrix_f(n, k, 10);
  Matrix<float> c_tc(n, n), c_ref(n, n);
  tc::tc_syr2k(Uplo::Lower, 1.0f, a.view(), b.view(), 0.0f, c_tc.view());
  blas::syr2k(Uplo::Lower, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ref.view());
  double worst = 0.0, scale = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      worst = std::max(worst, std::abs(double(c_tc(i, j)) - double(c_ref(i, j))));
      scale = std::max(scale, std::abs(double(c_ref(i, j))));
    }
  EXPECT_LT(worst / scale, 4.0 * kHalfEps);
  EXPECT_GT(worst / scale, 1e-7);  // it is still fp16-rounded, not exact
}

TEST(TcSyr2k, TileCountsShowHalfWork) {
  const auto counts = tc::tc_syr2k_tile_counts(1024, 128);
  // Lower-triangle tiles ~ half of all tiles (plus the diagonal).
  EXPECT_LT(counts.syr2k, counts.two_gemm * 6 / 10);
  EXPECT_GT(counts.syr2k, counts.two_gemm * 4 / 10);
}

TEST(TcSyr2k, Tf32Mode) {
  const index_t n = 32, k = 16;
  auto a = test::random_matrix_f(n, k, 11);
  auto b = test::random_matrix_f(n, k, 12);
  Matrix<float> c(n, n), ref(n, n);
  tc::tc_syr2k(Uplo::Lower, 1.0f, a.view(), b.view(), 0.0f, c.view(),
               tc::TcPrecision::Tf32);
  blas::syr2k(Uplo::Lower, Trans::No, 1.0f, a.view(), b.view(), 0.0f, ref.view());
  // Operand rounding errors accumulate over the 2k products, and the sum
  // cancels, so the bound scales with k, not with |result|.
  const float tol = kTf32Eps * static_cast<float>(k);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(c(i, j), ref(i, j), tol);
}

}  // namespace
}  // namespace tcevd
