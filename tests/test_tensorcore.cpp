// Tensor Core emulator semantics: tile behaviour, operand rounding, error
// bounds of tc_gemm vs exact, fp16 vs tf32 differences.
#include <gtest/gtest.h>

#include <cmath>

#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/tensorcore/engine.hpp"
#include "src/tensorcore/mma_tile.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;
using tc::TcPrecision;

TEST(MmaTile, ExactForSmallIntegers) {
  // Integer-valued tiles are exact in fp16, so the MMA must be exact.
  Matrix<float> a(16, 16), b(16, 16), c(16, 16);
  Rng rng(1);
  for (index_t j = 0; j < 16; ++j)
    for (index_t i = 0; i < 16; ++i) {
      a(i, j) = static_cast<float>(static_cast<int>(rng.bounded(9)) - 4);
      b(i, j) = static_cast<float>(static_cast<int>(rng.bounded(9)) - 4);
    }
  tc::mma_tile(a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld(), TcPrecision::Fp16);
  for (index_t j = 0; j < 16; ++j)
    for (index_t i = 0; i < 16; ++i) {
      float ref = 0.0f;
      for (index_t l = 0; l < 16; ++l) ref += a(i, l) * b(l, j);
      EXPECT_EQ(c(i, j), ref);
    }
}

TEST(MmaTile, AccumulatesIntoC) {
  Matrix<float> a(16, 16), b(16, 16), c(16, 16);
  set_identity(a.view());
  set_identity(b.view());
  c.fill(2.0f);
  tc::mma_tile(a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld(), TcPrecision::Fp16);
  EXPECT_EQ(c(0, 0), 3.0f);  // 2 + 1
  EXPECT_EQ(c(1, 0), 2.0f);  // 2 + 0
}

TEST(MmaTile, RoundsOperandsToFp16) {
  // An operand below fp16 subnormal range vanishes in fp16 mode...
  Matrix<float> a(16, 16), b(16, 16), c(16, 16);
  a(0, 0) = 1e-30f;
  b(0, 0) = 1.0f;
  tc::mma_tile(a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld(), TcPrecision::Fp16);
  EXPECT_EQ(c(0, 0), 0.0f);
  // ...but survives in TF32 mode.
  set_zero(c.view());
  tc::mma_tile(a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld(), TcPrecision::Tf32);
  EXPECT_NEAR(c(0, 0), 1e-30f, 1e-33f);
}

TEST(TcGemm, MatchesTileEmulatorOnAlignedShapes) {
  // tc_gemm (global rounding + fp32 accumulate) must agree with the explicit
  // 16x16x16 tile loop up to fp32 accumulation ordering.
  const index_t m = 32, n = 32, k = 32;
  auto a = test::random_matrix_f(m, k, 5);
  auto b = test::random_matrix_f(k, n, 6);
  Matrix<float> c_fast(m, n);
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_fast.view());

  Matrix<float> c_tiles(m, n);
  for (index_t jt = 0; jt < n; jt += 16)
    for (index_t it = 0; it < m; it += 16)
      for (index_t lt = 0; lt < k; lt += 16)
        tc::mma_tile(&a(it, lt), a.ld(), &b(lt, jt), b.ld(), &c_tiles(it, jt), c_tiles.ld(),
                     TcPrecision::Fp16);
  EXPECT_LT(test::rel_diff<float>(c_fast.view(), c_tiles.view()), 1e-6);
}

TEST(TcGemm, ErrorBoundedByHalfEps) {
  const index_t n = 64;
  auto a = test::random_matrix_f(n, n, 7);
  auto b = test::random_matrix_f(n, n, 8);
  Matrix<float> c_tc(n, n), c_ref(n, n);
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_tc.view());
  blas::gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ref.view());
  const double rel = test::rel_diff<float>(c_tc.view(), c_ref.view());
  // Two rounded operands -> ~eps_16 relative error; must be well above fp32.
  EXPECT_LT(rel, 2.0 * kHalfEps);
  EXPECT_GT(rel, 1e-6);
}

TEST(TcGemm, ExactWhenOperandsAreFp16Representable) {
  const index_t n = 48;
  auto a = test::random_matrix_f(n, n, 9);
  auto b = test::random_matrix_f(n, n, 10);
  tc::round_matrix(a.view(), TcPrecision::Fp16);
  tc::round_matrix(b.view(), TcPrecision::Fp16);
  Matrix<float> c_tc(n, n), c_ref(n, n);
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_tc.view());
  blas::gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ref.view());
  // Same operands, same fp32 accumulation order -> bitwise equal.
  EXPECT_EQ(test::rel_diff<float>(c_tc.view(), c_ref.view()), 0.0);
}

struct TransCase {
  Trans ta, tb;
};

class TcGemmTransTest : public ::testing::TestWithParam<TransCase> {};

TEST_P(TcGemmTransTest, HandlesTransposes) {
  const auto p = GetParam();
  const index_t m = 24, n = 20, k = 28;
  const index_t am = (p.ta == Trans::No) ? m : k;
  const index_t an = (p.ta == Trans::No) ? k : m;
  const index_t bm = (p.tb == Trans::No) ? k : n;
  const index_t bn = (p.tb == Trans::No) ? n : k;
  auto a = test::random_matrix_f(am, an, 11);
  auto b = test::random_matrix_f(bm, bn, 12);
  Matrix<float> c_tc(m, n), c_ref(m, n);
  tc::tc_gemm(p.ta, p.tb, 1.0f, a.view(), b.view(), 0.0f, c_tc.view());
  blas::gemm(p.ta, p.tb, 1.0f, a.view(), b.view(), 0.0f, c_ref.view());
  EXPECT_LT(test::rel_diff<float>(c_tc.view(), c_ref.view()), 2.0 * kHalfEps);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, TcGemmTransTest,
                         ::testing::Values(TransCase{Trans::No, Trans::No},
                                           TransCase{Trans::No, Trans::Yes},
                                           TransCase{Trans::Yes, Trans::No},
                                           TransCase{Trans::Yes, Trans::Yes}));

TEST(TcGemm, Tf32SurvivesWhereFp16Flushes) {
  // Entries ~1e-9 sit far below the smallest fp16 subnormal (~6e-8): fp16
  // operand rounding flushes them all to zero, TF32 (fp32 exponent range)
  // keeps them. Same 10-bit mantissa, so only the exponent range differs.
  const index_t n = 32;
  Rng rng(13);
  Matrix<float> a(n, n), b(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      a(i, j) = static_cast<float>(rng.normal()) * 1e-9f;
      b(i, j) = static_cast<float>(rng.normal());
    }
  Matrix<float> c16(n, n), c32(n, n), ref(n, n);
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c16.view(),
              TcPrecision::Fp16);
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c32.view(),
              TcPrecision::Tf32);
  blas::gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, ref.view());
  // Outputs are ~1e-9 so normalize by ||ref|| itself, not max(||ref||, 1).
  const double ref_norm = frobenius_norm<float>(ref.view());
  EXPECT_DOUBLE_EQ(frobenius_diff<float>(c16.view(), ref.view()) / ref_norm, 1.0);  // flushed
  EXPECT_LT(frobenius_diff<float>(c32.view(), ref.view()) / ref_norm, 2.0 * kTf32Eps);
}

TEST(TcGemm, ErrorGrowsLikeSqrtK) {
  // Statistical property of the rounding model: for iid operands the
  // absolute output error scales ~ sqrt(k) * eps16 (random-walk accumulation
  // of operand rounding). Check the growth exponent over k = 64 -> 1024 is
  // clearly sublinear and clearly nonzero.
  auto err_at = [&](index_t k) {
    const index_t m = 32;
    auto a = test::random_matrix_f(m, k, 1000 + k);
    auto b = test::random_matrix_f(k, m, 2000 + k);
    Matrix<float> c_tc(m, m), c_ref(m, m);
    tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_tc.view());
    blas::gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ref.view());
    return frobenius_diff<float>(c_tc.view(), c_ref.view());
  };
  const double e64 = err_at(64);
  const double e1024 = err_at(1024);
  const double growth = std::log2(e1024 / e64) / std::log2(1024.0 / 64.0);
  EXPECT_GT(growth, 0.25);  // not flat
  EXPECT_LT(growth, 0.85);  // clearly sublinear (sqrt-like, not linear)
}

TEST(Context, RecordsShapes) {
  tc::Fp32Engine eng;
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  auto a = test::random_matrix_f(10, 6, 20);
  auto b = test::random_matrix_f(6, 8, 21);
  Matrix<float> c(10, 8);
  ctx.gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  const auto& rec = ctx.telemetry().recorded();
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec[0].m, 10);
  EXPECT_EQ(rec[0].n, 8);
  EXPECT_EQ(rec[0].k, 6);
  EXPECT_EQ(rec[0].min_dim(), 6);
  EXPECT_EQ(rec[0].engine, tc::EngineKind::Fp32);
  EXPECT_DOUBLE_EQ(ctx.telemetry().recorded_flops(), 2.0 * 10 * 8 * 6);
  ctx.telemetry().clear_recorded();
  EXPECT_TRUE(ctx.telemetry().recorded().empty());
}

TEST(Context, TransposedShapeRecordsInnerDim) {
  tc::Fp32Engine eng;
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  auto a = test::random_matrix_f(6, 10, 22);  // op(A) = A^T is 10 x 6
  auto b = test::random_matrix_f(6, 8, 23);
  Matrix<float> c(10, 8);
  ctx.gemm(Trans::Yes, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_EQ(ctx.telemetry().recorded()[0].k, 6);
}

TEST(Context, EcTcShapesCarryThreeXCostFactor) {
  // One logical EC GEMM = 3 Tensor-Core products (head x head, head x
  // residual, residual x head): flops() must charge the 3x, while
  // logical_flops() stays the textbook 2mnk.
  tc::EcTcEngine eng(TcPrecision::Fp16);
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  auto a = test::random_matrix_f(10, 6, 24);
  auto b = test::random_matrix_f(6, 8, 25);
  Matrix<float> c(10, 8);
  ctx.gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  const auto& rec = ctx.telemetry().recorded();
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec[0].engine, tc::EngineKind::EcTc);
  EXPECT_DOUBLE_EQ(rec[0].logical_flops(), 2.0 * 10 * 8 * 6);
  EXPECT_DOUBLE_EQ(rec[0].flops(), 3.0 * 2.0 * 10 * 8 * 6);
  EXPECT_DOUBLE_EQ(ctx.telemetry().recorded_flops(), 3.0 * 2.0 * 10 * 8 * 6);
}

TEST(Engine, AllEnginesAgreeToTheirPrecision) {
  const index_t n = 40;
  auto a = test::random_matrix_f(n, n, 30);
  auto b = test::random_matrix_f(n, n, 31);
  Matrix<float> ref(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, ref.view());

  tc::Fp32Engine fp32;
  tc::TcEngine tchalf(TcPrecision::Fp16);
  tc::EcTcEngine ectc(TcPrecision::Fp16);
  Matrix<float> c(n, n);

  fp32.gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_EQ(test::rel_diff<float>(c.view(), ref.view()), 0.0);

  tchalf.gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_LT(test::rel_diff<float>(c.view(), ref.view()), 2.0 * kHalfEps);

  ectc.gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_LT(test::rel_diff<float>(c.view(), ref.view()), 1e-5);
}

TEST(Engine, NamesAreStable) {
  EXPECT_EQ(tc::Fp32Engine().name(), "fp32");
  EXPECT_EQ(tc::TcEngine(TcPrecision::Fp16).name(), "tc-fp16");
  EXPECT_EQ(tc::TcEngine(TcPrecision::Tf32).name(), "tc-tf32");
  EXPECT_EQ(tc::EcTcEngine(TcPrecision::Fp16).name(), "ectc-fp16");
}

}  // namespace
}  // namespace tcevd
