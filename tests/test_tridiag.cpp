// steqr / sterf / stebz on matrices with known or cross-checkable spectra.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/lapack/tridiag.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

/// The (-1, 2, -1) Laplacian has eigenvalues 2 - 2 cos(k pi / (n+1)).
std::vector<double> laplacian_eigs(index_t n) {
  std::vector<double> eigs(static_cast<std::size_t>(n));
  for (index_t k = 1; k <= n; ++k)
    eigs[static_cast<std::size_t>(k - 1)] =
        2.0 - 2.0 * std::cos(static_cast<double>(k) * std::numbers::pi / (n + 1));
  return eigs;
}

class LaplacianTest : public ::testing::TestWithParam<index_t> {};

TEST_P(LaplacianTest, SteqrFindsKnownSpectrum) {
  const index_t n = GetParam();
  std::vector<double> d(static_cast<std::size_t>(n), 2.0);
  std::vector<double> e(static_cast<std::size_t>(n - 1), -1.0);
  ASSERT_TRUE(lapack::steqr<double>(d, e, nullptr).ok());
  auto ref = laplacian_eigs(n);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)], 1e-12);
}

TEST_P(LaplacianTest, SterfMatchesSteqr) {
  const index_t n = GetParam();
  std::vector<double> d1(static_cast<std::size_t>(n), 2.0);
  std::vector<double> e1(static_cast<std::size_t>(n - 1), -1.0);
  auto d2 = d1;
  auto e2 = e1;
  ASSERT_TRUE(lapack::steqr<double>(d1, e1, nullptr).ok());
  ASSERT_TRUE(lapack::sterf(d2, e2).ok());
  for (index_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(d1[static_cast<std::size_t>(i)], d2[static_cast<std::size_t>(i)]);
}

TEST_P(LaplacianTest, StebzMatchesKnownSpectrum) {
  const index_t n = GetParam();
  std::vector<double> d(static_cast<std::size_t>(n), 2.0);
  std::vector<double> e(static_cast<std::size_t>(n - 1), -1.0);
  auto eigs = lapack::stebz<double>(d, e, 0, n - 1, 1e-13);
  auto ref = laplacian_eigs(n);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(eigs[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LaplacianTest, ::testing::Values<index_t>(2, 3, 10, 33, 100));

TEST(Steqr, EigenvectorsDiagonalizeT) {
  const index_t n = 50;
  Rng rng(1);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  for (auto& v : d) v = rng.normal();
  for (auto& v : e) v = rng.normal();

  Matrix<double> t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[static_cast<std::size_t>(i)];
    if (i + 1 < n) {
      t(i + 1, i) = e[static_cast<std::size_t>(i)];
      t(i, i + 1) = e[static_cast<std::size_t>(i)];
    }
  }

  Matrix<double> z(n, n);
  set_identity(z.view());
  auto zv = z.view();
  ASSERT_TRUE(lapack::steqr<double>(d, e, &zv).ok());
  EXPECT_LT(orthogonality_residual<double>(z.view()), 1e-12 * n);

  // T z_j == lambda_j z_j.
  Matrix<double> tz(n, n);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, t.view(), z.view(), 0.0, tz.view());
  double max_err = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      max_err = std::max(max_err, std::abs(tz(i, j) - d[static_cast<std::size_t>(j)] * z(i, j)));
  EXPECT_LT(max_err, 1e-12);
}

TEST(Steqr, AscendingOrder) {
  const index_t n = 64;
  Rng rng(2);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n - 1));
  for (auto& v : d) v = rng.normal();
  for (auto& v : e) v = rng.normal();
  ASSERT_TRUE(lapack::steqr<double>(d, e, nullptr).ok());
  for (index_t i = 1; i < n; ++i)
    EXPECT_LE(d[static_cast<std::size_t>(i - 1)], d[static_cast<std::size_t>(i)]);
}

TEST(Steqr, SizeOneAndTwo) {
  std::vector<double> d{3.0};
  std::vector<double> e;
  ASSERT_TRUE(lapack::steqr<double>(d, e, nullptr).ok());
  EXPECT_EQ(d[0], 3.0);

  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  d = {2.0, 2.0};
  e = {1.0};
  ASSERT_TRUE(lapack::steqr<double>(d, e, nullptr).ok());
  EXPECT_NEAR(d[0], 1.0, 1e-14);
  EXPECT_NEAR(d[1], 3.0, 1e-14);
}

TEST(Steqr, ZeroOffdiagonalIsImmediatelyDeflated) {
  std::vector<double> d{5.0, -1.0, 2.0};
  std::vector<double> e{0.0, 0.0};
  ASSERT_TRUE(lapack::steqr<double>(d, e, nullptr).ok());
  EXPECT_DOUBLE_EQ(d[0], -1.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(SturmCount, CountsCorrectly) {
  // Laplacian n=4: eigenvalues 2-2cos(k pi/5), roughly .38, 1.38, 2.62, 3.62.
  std::vector<double> d(4, 2.0);
  std::vector<double> e(3, -1.0);
  EXPECT_EQ(lapack::sturm_count<double>(d, e, 0.0), 0);
  EXPECT_EQ(lapack::sturm_count<double>(d, e, 1.0), 1);
  EXPECT_EQ(lapack::sturm_count<double>(d, e, 2.0), 2);
  EXPECT_EQ(lapack::sturm_count<double>(d, e, 3.0), 3);
  EXPECT_EQ(lapack::sturm_count<double>(d, e, 4.0), 4);
}

TEST(Stebz, SelectedRange) {
  const index_t n = 40;
  std::vector<double> d(static_cast<std::size_t>(n), 2.0);
  std::vector<double> e(static_cast<std::size_t>(n - 1), -1.0);
  auto ref = laplacian_eigs(n);
  auto eigs = lapack::stebz<double>(d, e, 5, 9, 1e-13);
  ASSERT_EQ(eigs.size(), 5u);
  for (index_t i = 0; i < 5; ++i)
    EXPECT_NEAR(eigs[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(5 + i)], 1e-10);
}

TEST(Stebz, RepeatedEigenvalues) {
  // diag(1,1,1,5): three identical eigenvalues.
  std::vector<double> d{1.0, 1.0, 1.0, 5.0};
  std::vector<double> e{0.0, 0.0, 0.0};
  auto eigs = lapack::stebz<double>(d, e, 0, 3, 1e-13);
  EXPECT_NEAR(eigs[0], 1.0, 1e-9);
  EXPECT_NEAR(eigs[1], 1.0, 1e-9);
  EXPECT_NEAR(eigs[2], 1.0, 1e-9);
  EXPECT_NEAR(eigs[3], 5.0, 1e-9);
}

TEST(Steqr, FloatPrecision) {
  const index_t n = 80;
  std::vector<float> d(static_cast<std::size_t>(n), 2.0f);
  std::vector<float> e(static_cast<std::size_t>(n - 1), -1.0f);
  ASSERT_TRUE(lapack::steqr<float>(d, e, nullptr).ok());
  auto ref = laplacian_eigs(n);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)], 1e-4);
}

}  // namespace
}  // namespace tcevd
