// Tall-skinny QR: factorization correctness across tree depths and types.
#include <gtest/gtest.h>

#include "src/blas/blas.hpp"
#include "src/lapack/qr.hpp"
#include "src/tsqr/tsqr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

template <typename T>
void check_tsqr(index_t m, index_t n, std::uint64_t seed, double tol,
                const tsqr::TsqrOptions& opts = {}) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  fill_normal(rng, a.view());
  Matrix<T> q(m, n), r(n, n);
  ASSERT_TRUE(tsqr::tsqr_factor(a.view(), q.view(), r.view(), opts).ok());

  // Q R == A.
  Matrix<T> qr(m, n);
  blas::gemm(Trans::No, Trans::No, T{1}, q.view(), r.view(), T{}, qr.view());
  EXPECT_LT(test::rel_diff<T>(qr.view(), a.view()), tol);

  // Orthonormal columns.
  EXPECT_LT(orthogonality_residual<T>(q.view()), tol * m);

  // R upper triangular.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) EXPECT_EQ(r(i, j), T{});
}

class TsqrShapeTest : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(TsqrShapeTest, DoubleFactorization) {
  const auto [m, n] = GetParam();
  check_tsqr<double>(m, n, 10 + m, 1e-12);
}

TEST_P(TsqrShapeTest, FloatFactorization) {
  const auto [m, n] = GetParam();
  check_tsqr<float>(m, n, 20 + m, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TsqrShapeTest,
                         ::testing::Values(std::make_tuple(32, 32),     // square leaf
                                           std::make_tuple(100, 10),    // single leaf
                                           std::make_tuple(600, 16),    // two levels
                                           std::make_tuple(2000, 8),    // deep tree
                                           std::make_tuple(1537, 24),   // odd split
                                           std::make_tuple(512, 1)));   // single column

TEST(Tsqr, SmallLeafForcesDeepTree) {
  tsqr::TsqrOptions opts;
  opts.leaf_rows = 8;
  check_tsqr<double>(1024, 4, 99, 1e-12, opts);
}

TEST(Tsqr, LeafClampedToPanelWidth) {
  tsqr::TsqrOptions opts;
  opts.leaf_rows = 1;  // absurd; must be clamped to >= n internally
  check_tsqr<double>(256, 16, 101, 1e-12, opts);
}

TEST(Tsqr, IllConditionedPanelStillOrthogonal) {
  // Nearly dependent columns: Householder-based TSQR must keep Q orthogonal
  // (this is where Gram-Schmidt-per-block would lose orthogonality).
  const index_t m = 800, n = 6;
  Rng rng(5);
  Matrix<double> a(m, n);
  fill_normal(rng, a.view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 1; j < n; ++j) a(i, j) = a(i, 0) + 1e-9 * a(i, j);
  }
  Matrix<double> q(m, n), r(n, n);
  ASSERT_TRUE(tsqr::tsqr_factor(a.view(), q.view(), r.view()).ok());
  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-11 * m);
  Matrix<double> qr(m, n);
  blas::gemm(Trans::No, Trans::No, 1.0, q.view(), r.view(), 0.0, qr.view());
  EXPECT_LT(test::rel_diff<double>(qr.view(), a.view()), 1e-12);
}

TEST(Tsqr, MatchesHouseholderQrUpToSigns) {
  // |R| from TSQR equals |R| from plain Householder QR (column signs differ).
  const index_t m = 300, n = 12;
  auto a = test::random_matrix(m, n, 7);
  Matrix<double> q(m, n), r(n, n);
  ASSERT_TRUE(tsqr::tsqr_factor(a.view(), q.view(), r.view()).ok());

  auto work = a;
  std::vector<double> tau;
  lapack::geqr2(work.view(), tau);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i)
      EXPECT_NEAR(std::abs(r(i, j)), std::abs(work(i, j)), 1e-10);
}

}  // namespace
}  // namespace tcevd
