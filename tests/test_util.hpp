// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include "src/common/matrix.hpp"
#include "src/common/norms.hpp"
#include "src/common/rng.hpp"

namespace tcevd::test {

inline Matrix<double> random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<double> a(m, n);
  fill_normal(rng, a.view());
  return a;
}

inline Matrix<float> random_matrix_f(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> a(m, n);
  fill_normal(rng, a.view());
  return a;
}

template <typename T>
Matrix<T> random_symmetric(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  return a;
}

/// Relative Frobenius difference ||a-b||_F / max(||b||_F, 1).
template <typename T>
double rel_diff(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  const double denom = std::max(frobenius_norm(b), 1.0);
  return frobenius_diff(a, b) / denom;
}

}  // namespace tcevd::test
