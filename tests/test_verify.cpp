// Verified solves: stochastic residual estimation, ABFT-checksummed GEMM,
// and residual-gated precision escalation (DESIGN.md §12).
//
// The acceptance bar this file enforces: with gemm.tile_corrupt armed, an
// ABFT-enabled solve detects the corrupted tile, recomputes it, and returns
// a result bitwise-equal to the fault-free solve; the same corruption with
// ABFT off produces a residual breach that the estimate+escalate policy
// converts into a passing re-solve on a better engine — both paths visible
// in the RecoveryLog and Telemetry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "src/blas/abft.hpp"
#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/common/fault.hpp"
#include "src/common/recovery.hpp"
#include "src/common/verify.hpp"
#include "src/evd/batch.hpp"
#include "src/evd/evd.hpp"
#include "src/tensorcore/engine.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "tests/test_util.hpp"

namespace tcevd {
namespace {

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

/// Exact ||A - Q diag(lambda) Qᵀ||_F / ||A||_F and ||QᵀQ - I||_F, in double.
struct ExactResiduals {
  double residual;
  double orthogonality;
};

ExactResiduals exact_residuals(ConstMatrixView<float> a, const std::vector<float>& lambda,
                               ConstMatrixView<float> q) {
  const index_t n = a.rows();
  Matrix<double> qd(n, n);
  convert_matrix<float, double>(q, qd.view());
  Matrix<double> ql(n, n);  // Q * diag(lambda)
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      ql(i, j) = qd(i, j) * static_cast<double>(lambda[static_cast<std::size_t>(j)]);
  Matrix<double> rec(n, n);
  blas::gemm<double>(blas::Trans::No, blas::Trans::Yes, 1.0,
                     ConstMatrixView<double>(ql.view()), ConstMatrixView<double>(qd.view()),
                     0.0, rec.view());
  double rnum = 0.0;
  double anorm = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(a(i, j)) - rec(i, j);
      rnum += d * d;
      anorm += static_cast<double>(a(i, j)) * static_cast<double>(a(i, j));
    }
  Matrix<double> qtq(n, n);
  blas::gemm<double>(blas::Trans::Yes, blas::Trans::No, 1.0,
                     ConstMatrixView<double>(qd.view()), ConstMatrixView<double>(qd.view()),
                     0.0, qtq.view());
  double onum = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const double d = qtq(i, j) - (i == j ? 1.0 : 0.0);
      onum += d * d;
    }
  return {std::sqrt(rnum) / std::sqrt(anorm), std::sqrt(onum)};
}

std::unique_ptr<tc::GemmEngine> make_engine(int kind) {
  if (kind == 0) return std::make_unique<tc::Fp32Engine>();
  if (kind == 1) return std::make_unique<tc::TcEngine>();
  return std::make_unique<tc::EcTcEngine>();
}

// --- estimator -------------------------------------------------------------

TEST_F(VerifyTest, PolicyNames) {
  EXPECT_STREQ(verify::policy_name(verify::Policy::Off), "off");
  EXPECT_STREQ(verify::policy_name(verify::Policy::Estimate), "estimate");
  EXPECT_STREQ(verify::policy_name(verify::Policy::EstimateEscalate), "estimate+escalate");
}

TEST_F(VerifyTest, ThresholdsScaleWithEngineAndOrder) {
  const auto fp32 = verify::thresholds_for(tc::EngineKind::Fp32, 128);
  const auto tc16 = verify::thresholds_for(tc::EngineKind::Tc, 128);
  const auto ectc = verify::thresholds_for(tc::EngineKind::EcTc, 128);
  // fp16 numerics get a far looser gate than anything fp32-accurate.
  EXPECT_GT(tc16.residual, 10.0 * ectc.residual);
  EXPECT_GT(ectc.residual, fp32.residual);
  // Thresholds grow with n and scale linearly with tol_scale.
  EXPECT_GT(verify::thresholds_for(tc::EngineKind::Fp32, 512).residual, fp32.residual);
  EXPECT_NEAR(verify::thresholds_for(tc::EngineKind::Fp32, 128, 2.0).residual,
              2.0 * fp32.residual, 1e-12);
}

TEST_F(VerifyTest, EstimatorAgreesWithExactResidualsAcrossEngines) {
  // The probe estimate targets the same Frobenius quantities the exact
  // O(n^3) computation measures; with 4 probes it must land within a small
  // constant factor — and, on clean solves, within threshold.
  for (int kind = 0; kind < 3; ++kind) {
    for (index_t n : {static_cast<index_t>(64), static_cast<index_t>(96)}) {
      auto a = test::random_symmetric<float>(n, 1000 + 10 * kind + n);
      auto engine = make_engine(kind);
      Context ctx(*engine);
      evd::EvdOptions opt;
      opt.vectors = true;
      auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
      ASSERT_TRUE(res.ok()) << res.status().to_string();

      const ExactResiduals exact = exact_residuals(
          ConstMatrixView<float>(a.view()), res->eigenvalues,
          ConstMatrixView<float>(res->vectors.view()));
      verify::Options vopt;
      const verify::Report rep = verify::estimate(
          ConstMatrixView<float>(a.view()), res->eigenvalues,
          ConstMatrixView<float>(res->vectors.view()), engine->kind(), vopt);

      ASSERT_TRUE(rep.checked);
      EXPECT_TRUE(rep.passed) << engine->name() << " n=" << n
                              << " res=" << rep.residual << " orth=" << rep.orthogonality;
      // Agreement within 8x both ways (4-probe Frobenius estimates of
      // full-rank error matrices concentrate much tighter than this).
      EXPECT_LT(rep.residual, 8.0 * exact.residual + 1e-12);
      EXPECT_GT(8.0 * rep.residual, exact.residual - 1e-12);
      EXPECT_LT(rep.orthogonality, 8.0 * exact.orthogonality + 1e-12);
      EXPECT_GT(8.0 * rep.orthogonality, exact.orthogonality - 1e-12);
    }
  }
}

TEST_F(VerifyTest, EstimatorFlagsDamagedEigensystem) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 77);
  tc::Fp32Engine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.vectors = true;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok());

  verify::Options vopt;
  // Damaged eigenvalue -> residual breach (Q still orthogonal).
  auto lambda = res->eigenvalues;
  lambda[0] += 100.0f;
  verify::Report rep = verify::estimate(ConstMatrixView<float>(a.view()), lambda,
                                        ConstMatrixView<float>(res->vectors.view()),
                                        tc::EngineKind::Fp32, vopt);
  EXPECT_FALSE(rep.passed);
  EXPECT_GT(rep.residual, rep.residual_tol);

  // Damaged eigenvector column -> orthogonality breach.
  Matrix<float> q2(n, n);
  copy_matrix<float>(ConstMatrixView<float>(res->vectors.view()), q2.view());
  for (index_t i = 0; i < n; ++i) q2(i, 0) *= 2.0f;
  rep = verify::estimate(ConstMatrixView<float>(a.view()), res->eigenvalues,
                         ConstMatrixView<float>(q2.view()), tc::EngineKind::Fp32, vopt);
  EXPECT_FALSE(rep.passed);
  EXPECT_GT(rep.orthogonality, rep.orthogonality_tol);
}

TEST_F(VerifyTest, EigenvalueOnlyInvariantsGateCorruptSpectra) {
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 33);
  tc::Fp32Engine engine;
  Context ctx(engine);
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, {});
  ASSERT_TRUE(res.ok());

  verify::Options vopt;
  verify::Report rep = verify::estimate_values(ConstMatrixView<float>(a.view()),
                                               res->eigenvalues, tc::EngineKind::Fp32, vopt);
  EXPECT_TRUE(rep.passed) << "clean trace/frobenius error " << rep.residual;
  EXPECT_EQ(rep.orthogonality, 0.0);

  auto bad = res->eigenvalues;
  bad[n / 2] += 50.0f;  // breaks both Σλ = tr A and Σλ² = ||A||_F²
  rep = verify::estimate_values(ConstMatrixView<float>(a.view()), bad,
                                tc::EngineKind::Fp32, vopt);
  EXPECT_FALSE(rep.passed);
}

// --- ABFT: detect -> locate -> recompute -----------------------------------

TEST_F(VerifyTest, AbftCleanGemmIsBitwiseIdenticalAndCounted) {
  const index_t n = 96;
  auto a = test::random_matrix_f(n, n, 5);
  auto b = test::random_matrix_f(n, n, 6);
  Matrix<float> ref(n, n), c(n, n);
  set_zero(ref.view());
  set_zero(c.view());
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
                    ConstMatrixView<float>(b.view()), 0.0f, ref.view());

  const auto checked0 = blas::abft::tiles_checked();
  const auto detected0 = blas::abft::tiles_detected();
  {
    blas::abft::AbftScope abft;
    ASSERT_TRUE(blas::abft::enabled());
    blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
                      ConstMatrixView<float>(b.view()), 0.0f, c.view());
  }
  EXPECT_FALSE(blas::abft::enabled());
  EXPECT_GT(blas::abft::tiles_checked(), checked0);
  EXPECT_EQ(blas::abft::tiles_detected(), detected0);  // no false positives
  EXPECT_EQ(std::memcmp(c.data(), ref.data(), sizeof(float) * n * n), 0);
}

TEST_F(VerifyTest, AbftDetectsAndBitwiseRestoresCorruptedTile) {
  const index_t n = 96;
  auto a = test::random_matrix_f(n, n, 15);
  auto b = test::random_matrix_f(n, n, 16);
  Matrix<float> ref(n, n), c(n, n);
  set_zero(ref.view());
  set_zero(c.view());
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
                    ConstMatrixView<float>(b.view()), 0.0f, ref.view());

  const auto detected0 = blas::abft::tiles_detected();
  const auto recomputed0 = blas::abft::tiles_recomputed();
  recovery::Scope scope;
  {
    blas::abft::AbftScope abft;
    fault::arm(fault::Site::GemmTileCorrupt, 1);
    blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
                      ConstMatrixView<float>(b.view()), 0.0f, c.view());
  }
  EXPECT_EQ(fault::fired(fault::Site::GemmTileCorrupt), 1);
  EXPECT_EQ(blas::abft::tiles_detected(), detected0 + 1);
  EXPECT_EQ(blas::abft::tiles_recomputed(), recomputed0 + 1);
  // Recompute replays the identical accumulation: bitwise-restored result.
  EXPECT_EQ(std::memcmp(c.data(), ref.data(), sizeof(float) * n * n), 0);
  const RecoveryLog log = scope.take();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].site, "blas.abft");
  EXPECT_NE(log[0].action.find("checksum mismatch"), std::string::npos);
}

TEST_F(VerifyTest, AbftCoversTcGemmRoundedOperands) {
  // tc_gemm packs fp16-rounded panels; the checksums are computed from those
  // same packed (rounded) panels, so the invariant holds there too.
  const index_t n = 80;
  auto a = test::random_matrix_f(n, n, 25);
  auto b = test::random_matrix_f(n, n, 26);
  Matrix<float> ref(n, n), c(n, n);
  set_zero(ref.view());
  set_zero(c.view());
  tc::tc_gemm(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
              ConstMatrixView<float>(b.view()), 0.0f, ref.view());
  const auto detected0 = blas::abft::tiles_detected();
  {
    blas::abft::AbftScope abft;
    fault::arm(fault::Site::GemmTileCorrupt, 1);
    tc::tc_gemm(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
                ConstMatrixView<float>(b.view()), 0.0f, c.view());
  }
  EXPECT_EQ(blas::abft::tiles_detected(), detected0 + 1);
  EXPECT_EQ(std::memcmp(c.data(), ref.data(), sizeof(float) * n * n), 0);
}

TEST_F(VerifyTest, CorruptionWithoutAbftSilentlyLandsInResult) {
  // The negative control: nothing checks the tile, the bad value stays.
  const index_t n = 64;
  auto a = test::random_matrix_f(n, n, 35);
  auto b = test::random_matrix_f(n, n, 36);
  Matrix<float> ref(n, n), c(n, n);
  set_zero(ref.view());
  set_zero(c.view());
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
                    ConstMatrixView<float>(b.view()), 0.0f, ref.view());
  fault::arm(fault::Site::GemmTileCorrupt, 1);
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
                    ConstMatrixView<float>(b.view()), 0.0f, c.view());
  EXPECT_EQ(fault::fired(fault::Site::GemmTileCorrupt), 1);
  EXPECT_NE(std::memcmp(c.data(), ref.data(), sizeof(float) * n * n), 0);
}

// --- end-to-end: the acceptance scenario -----------------------------------

TEST_F(VerifyTest, AbftSolveUnderCorruptionIsBitwiseEqualToFaultFree) {
  const index_t n = 128;
  auto a = test::random_symmetric<float>(n, 55);
  tc::TcEngine engine;
  evd::EvdOptions opt;
  opt.vectors = true;

  Context ref_ctx(engine);
  auto ref = evd::solve(ConstMatrixView<float>(a.view()), ref_ctx, opt);
  ASSERT_TRUE(ref.ok());

  evd::EvdOptions abft_opt = opt;
  abft_opt.abft = true;
  fault::arm(fault::Site::GemmTileCorrupt, 1);
  Context ctx(engine);
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, abft_opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_EQ(fault::fired(fault::Site::GemmTileCorrupt), 1);

  // Detect -> locate -> recompute happened, and the result is bitwise the
  // fault-free solve.
  bool abft_noted = false;
  for (const auto& ev : res->recovery)
    if (ev.site == "blas.abft") abft_noted = true;
  EXPECT_TRUE(abft_noted);
  EXPECT_EQ(res->eigenvalues, ref->eigenvalues);
  ASSERT_EQ(res->vectors.rows(), n);
  EXPECT_EQ(std::memcmp(res->vectors.data(), ref->vectors.data(), sizeof(float) * n * n), 0);
  // The aggregated telemetry carries the recovery event too.
  bool in_telemetry = false;
  for (const auto& ev : ctx.telemetry().recovery())
    if (ev.site == "blas.abft") in_telemetry = true;
  EXPECT_TRUE(in_telemetry);
}

TEST_F(VerifyTest, EscalationConvertsCorruptionIntoPassingResolve) {
  // Same corruption, ABFT off: the residual gate catches it after the fact
  // and estimate+escalate re-solves on the next engine up.
  const index_t n = 128;
  auto a = test::random_symmetric<float>(n, 55);
  tc::TcEngine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.vectors = true;
  opt.verify = verify::Policy::EstimateEscalate;
  fault::arm(fault::Site::GemmTileCorrupt, 1);
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_EQ(fault::fired(fault::Site::GemmTileCorrupt), 1);

  EXPECT_TRUE(res->verify.checked);
  EXPECT_TRUE(res->verify.passed);
  EXPECT_GE(res->verify.escalations, 1);
  EXPECT_GE(res->verify.attempts, 2);
  EXPECT_NE(res->verify.engine, engine.name());  // accepted on a better engine

  bool breach_noted = false;
  bool resolve_noted = false;
  for (const auto& ev : res->recovery) {
    if (ev.site != "evd.verify") continue;
    if (ev.action.find("breached") != std::string::npos ||
        ev.action.find("failed") != std::string::npos)
      breach_noted = true;
    if (ev.action.find("re-solving") != std::string::npos) resolve_noted = true;
  }
  EXPECT_TRUE(breach_noted);
  EXPECT_TRUE(resolve_noted);
  EXPECT_GT(ctx.telemetry().stage_seconds("evd.verify"), 0.0);
  // The escalation counter stage records one call per escalation.
  bool escalation_stage = false;
  for (const auto& s : ctx.telemetry().stages())
    if (s.name == "evd.verify.escalation" && s.calls >= 1) escalation_stage = true;
  EXPECT_TRUE(escalation_stage);
}

TEST_F(VerifyTest, EscalationWalksTheFullChainToFp32) {
  // verify.residual forces a breach on the first two attempts; the chain
  // must walk Tc -> EcTc -> Fp32 and accept on the third.
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 66);
  tc::TcEngine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.vectors = true;
  opt.verify = verify::Policy::EstimateEscalate;
  opt.verify_max_attempts = 3;
  fault::arm(fault::Site::VerifyResidual, 2);
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_EQ(res->verify.attempts, 3);
  EXPECT_EQ(res->verify.escalations, 2);
  EXPECT_EQ(res->verify.engine, "fp32");
  EXPECT_TRUE(res->verify.passed);
}

TEST_F(VerifyTest, EscalationTerminatesWhenBudgetOrChainExhausts) {
  const index_t n = 48;
  auto a = test::random_symmetric<float>(n, 67);

  // Unlimited forced breaches: the attempt budget must stop the loop.
  {
    tc::TcEngine engine;
    Context ctx(engine);
    evd::EvdOptions opt;
    opt.vectors = true;
    opt.verify = verify::Policy::EstimateEscalate;
    opt.verify_max_attempts = 2;
    fault::arm(fault::Site::VerifyResidual, -1);
    auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
    fault::disarm_all();
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), ErrorCode::PrecisionLoss);
    EXPECT_EQ(fault::fired(fault::Site::VerifyResidual), 2);  // one per attempt
  }
  // Already on the terminal engine: the chain ends immediately.
  {
    tc::Fp32Engine engine;
    Context ctx(engine);
    evd::EvdOptions opt;
    opt.vectors = true;
    opt.verify = verify::Policy::EstimateEscalate;
    fault::arm(fault::Site::VerifyResidual, 1);
    auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), ErrorCode::PrecisionLoss);
    EXPECT_NE(res.status().message().find("chain is exhausted"), std::string::npos);
  }
}

TEST_F(VerifyTest, EstimatePolicyAnnotatesWithoutResolving) {
  const index_t n = 48;
  auto a = test::random_symmetric<float>(n, 68);
  tc::Fp32Engine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.vectors = true;
  opt.verify = verify::Policy::Estimate;
  fault::arm(fault::Site::VerifyResidual, 1);
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();  // annotated, not failed
  EXPECT_TRUE(res->verify.checked);
  EXPECT_FALSE(res->verify.passed);
  EXPECT_TRUE(res->verify.fault_forced);
  EXPECT_EQ(res->verify.attempts, 1);
  EXPECT_EQ(res->verify.escalations, 0);
  bool noted = false;
  for (const auto& ev : res->recovery)
    if (ev.site == "evd.verify") noted = true;
  EXPECT_TRUE(noted);
}

TEST_F(VerifyTest, VerificationOffLeavesResultUnchecked) {
  const index_t n = 48;
  auto a = test::random_symmetric<float>(n, 69);
  tc::Fp32Engine engine;
  Context ctx(engine);
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, {});
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->verify.checked);
  EXPECT_EQ(ctx.telemetry().stage_seconds("evd.verify"), 0.0);
}

TEST_F(VerifyTest, CleanVerifiedSolvePassesFirstAttempt) {
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 70);
  tc::EcTcEngine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.vectors = true;
  opt.verify = verify::Policy::EstimateEscalate;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_TRUE(res->verify.passed);
  EXPECT_EQ(res->verify.attempts, 1);
  EXPECT_EQ(res->verify.escalations, 0);
  EXPECT_EQ(res->verify.engine, engine.name());
  EXPECT_GT(res->timings.verify_s, 0.0);
}

// --- batch isolation --------------------------------------------------------

TEST_F(VerifyTest, SolveManyIsolatesAVerificationFailure) {
  // One forced breach, one worker (deterministic problem order): exactly one
  // problem is annotated as failed verification, its neighbors pass clean.
  const index_t n = 48;
  std::vector<Matrix<float>> problems;
  for (int i = 0; i < 3; ++i) problems.push_back(test::random_symmetric<float>(n, 80 + i));

  tc::Fp32Engine engine;
  evd::BatchOptions opt;
  opt.evd.vectors = true;
  opt.evd.verify = verify::Policy::Estimate;
  opt.num_threads = 1;
  fault::arm(fault::Site::VerifyResidual, 1);
  auto batch = evd::solve_many(problems, engine, opt);
  ASSERT_EQ(batch.problems.size(), 3u);
  EXPECT_TRUE(batch.all_ok());  // Estimate annotates, never fails the solve
  EXPECT_EQ(batch.verify_failures, 1);
  EXPECT_FALSE(batch.problems[0].verify.passed);  // first problem ate the budget
  EXPECT_TRUE(batch.problems[1].verify.passed);
  EXPECT_TRUE(batch.problems[2].verify.passed);
}

TEST_F(VerifyTest, SolveManyCountsEscalationsAndExhaustedChains) {
  const index_t n = 48;
  std::vector<Matrix<float>> problems;
  for (int i = 0; i < 3; ++i) problems.push_back(test::random_symmetric<float>(n, 90 + i));

  // Fp32 is terminal: the forced breach cannot escalate, so problem 0 fails
  // with PrecisionLoss while its neighbors still verify and pass.
  tc::Fp32Engine engine;
  evd::BatchOptions opt;
  opt.evd.vectors = true;
  opt.evd.verify = verify::Policy::EstimateEscalate;
  opt.num_threads = 1;
  fault::arm(fault::Site::VerifyResidual, 1);
  auto batch = evd::solve_many(problems, engine, opt);
  ASSERT_EQ(batch.problems.size(), 3u);
  EXPECT_FALSE(batch.problems[0].status.ok());
  EXPECT_EQ(batch.problems[0].status.code(), ErrorCode::PrecisionLoss);
  EXPECT_TRUE(batch.problems[1].status.ok());
  EXPECT_TRUE(batch.problems[2].status.ok());
  EXPECT_EQ(batch.num_ok(), 2u);
  EXPECT_EQ(batch.verify_failures, 1);
  EXPECT_TRUE(batch.problems[1].verify.passed);
  EXPECT_TRUE(batch.problems[2].verify.passed);
}

TEST_F(VerifyTest, TrivialOrdersSkipVerification) {
  Matrix<float> a(1, 1);
  a(0, 0) = 3.0f;
  tc::Fp32Engine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.vectors = true;
  opt.verify = verify::Policy::EstimateEscalate;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->verify.checked);
  EXPECT_FLOAT_EQ(res->eigenvalues[0], 3.0f);
}

}  // namespace
}  // namespace tcevd
