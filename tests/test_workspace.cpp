// Workspace arena and Context plumbing: alignment, scope rewind, spill
// accounting, high-water mark, and the steady-state allocation-regression
// guarantees the Context refactor exists to provide.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/bulge/bulge_wavefront.hpp"
#include "src/common/context.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/workspace.hpp"
#include "src/sbr/band.hpp"
#include "src/evd/evd.hpp"
#include "src/tensorcore/engine.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "test_util.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter backing the steady-state zero-allocation
// regression below: replacing the global operator new/delete pair is the only
// way to observe a library-internal heap allocation from a test.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Over-aligned and nothrow paths: without these the compiler falls back to
// the default implementations and library allocations taken through them
// would slip past g_heap_allocs, silently under-counting the regression.
void* operator new(std::size_t sz, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align =
      static_cast<std::size_t>(al) < sizeof(void*) ? sizeof(void*)
                                                   : static_cast<std::size_t>(al);
  void* p = nullptr;
  if (posix_memalign(&p, align, sz ? sz : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz, std::align_val_t al) { return ::operator new(sz, al); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

void* operator new(std::size_t sz, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(sz ? sz : 1);
}
void* operator new[](std::size_t sz, const std::nothrow_t& tag) noexcept {
  return ::operator new(sz, tag);
}
void* operator new(std::size_t sz, std::align_val_t al, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align =
      static_cast<std::size_t>(al) < sizeof(void*) ? sizeof(void*)
                                                   : static_cast<std::size_t>(al);
  void* p = nullptr;
  return posix_memalign(&p, align, sz ? sz : 1) == 0 ? p : nullptr;
}
void* operator new[](std::size_t sz, std::align_val_t al, const std::nothrow_t& tag) noexcept {
  return ::operator new(sz, al, tag);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace tcevd {
namespace {

bool aligned(const void* p, std::size_t a) {
  return reinterpret_cast<std::uintptr_t>(p) % a == 0;
}

TEST(Workspace, CheckoutsAreAligned) {
  Workspace ws;
  auto scope = ws.scope();
  for (std::size_t n : {1u, 3u, 63u, 64u, 65u, 1000u}) {
    void* p = ws.alloc_bytes(n);
    EXPECT_TRUE(aligned(p, Workspace::kAlignment)) << "request of " << n << " bytes";
  }
  float* f = scope.alloc<float>(7);
  EXPECT_TRUE(aligned(f, Workspace::kAlignment));
}

TEST(Workspace, MatrixCheckoutIsZeroInitialized) {
  Workspace ws;
  auto scope = ws.scope();
  {
    auto m = scope.matrix<float>(16, 16);
    for (index_t j = 0; j < 16; ++j)
      for (index_t i = 0; i < 16; ++i) m(i, j) = 42.0f;
  }
  // A second checkout reuses the dirtied memory and must still read zero.
  auto scope2 = ws.scope();
  auto m2 = scope2.matrix<float>(16, 16);
  for (index_t j = 0; j < 16; ++j)
    for (index_t i = 0; i < 16; ++i) EXPECT_EQ(m2(i, j), 0.0f);
}

TEST(Workspace, ScopeReleaseRewindsBump) {
  Workspace ws;
  ws.reserve(1 << 16);
  const std::size_t base = ws.bytes_in_use();
  {
    auto scope = ws.scope();
    (void)scope.matrix<float>(32, 32);
    EXPECT_GT(ws.bytes_in_use(), base);
  }
  EXPECT_EQ(ws.bytes_in_use(), base);
}

TEST(Workspace, NestedScopesReleaseLifo) {
  Workspace ws;
  ws.reserve(1 << 16);
  auto outer = ws.scope();
  (void)outer.matrix<float>(8, 8);
  const std::size_t after_outer = ws.bytes_in_use();
  {
    auto inner = ws.scope();
    (void)inner.matrix<float>(64, 64);
    EXPECT_GT(ws.bytes_in_use(), after_outer);
    {
      auto inner2 = ws.scope();
      (void)inner2.alloc<double>(100);
    }
    // inner2 released, inner's checkout still live.
    EXPECT_GT(ws.bytes_in_use(), after_outer);
  }
  EXPECT_EQ(ws.bytes_in_use(), after_outer);
}

TEST(Workspace, SpillAppendsBlockAndScopeReleasesIt) {
  Workspace ws;
  ws.reserve(1 << 12);  // deliberately tiny: the next checkout must spill
  const std::size_t blocks0 = ws.block_count();
  {
    auto scope = ws.scope();
    // Far larger than the reserved block: must spill exactly once.
    (void)scope.alloc<float>((std::size_t{4} << 20) / sizeof(float));
    EXPECT_EQ(ws.block_count(), blocks0 + 1);
    EXPECT_EQ(ws.spill_count(), 1);
  }
  // The spill block survives the scope (capacity is sticky) and is reused:
  // the same request again must NOT add another block.
  const std::size_t blocks1 = ws.block_count();
  {
    auto scope = ws.scope();
    (void)scope.alloc<float>((std::size_t{4} << 20) / sizeof(float));
  }
  EXPECT_EQ(ws.block_count(), blocks1);
  EXPECT_EQ(ws.spill_count(), 1);
}

TEST(Workspace, SpillBlocksHaveMinimumSize) {
  Workspace ws;  // no reserve: first alloc spills
  auto scope = ws.scope();
  (void)scope.alloc<float>(4);
  EXPECT_GE(ws.capacity(), Workspace::kMinBlockBytes);
}

TEST(Workspace, HighWaterMarkTracksPeakNotCurrent) {
  Workspace ws;
  ws.reserve(1 << 16);
  {
    auto scope = ws.scope();
    (void)scope.matrix<float>(50, 50);
  }
  const std::size_t hwm = ws.high_water_mark();
  EXPECT_GE(hwm, 50u * 50u * sizeof(float));
  EXPECT_EQ(ws.bytes_in_use(), 0u);
  // A smaller follow-up checkout must not move the peak.
  {
    auto scope = ws.scope();
    (void)scope.matrix<float>(4, 4);
  }
  EXPECT_EQ(ws.high_water_mark(), hwm);
}

TEST(Workspace, ReserveIsIdempotentAndKeepsCapacity) {
  Workspace ws;
  ws.reserve(1 << 16);
  const std::size_t cap = ws.capacity();
  const std::size_t blocks = ws.block_count();
  ws.reserve(1 << 10);  // smaller: no-op
  ws.reserve(1 << 16);  // equal: no-op
  EXPECT_EQ(ws.capacity(), cap);
  EXPECT_EQ(ws.block_count(), blocks);
}

TEST(Context, OwnsOrBorrowsEngine) {
  tc::Fp32Engine borrowed;
  Context c1(borrowed);
  EXPECT_EQ(&c1.engine(), static_cast<tc::GemmEngine*>(&borrowed));

  Context c2(std::make_unique<tc::Fp32Engine>());
  EXPECT_EQ(c2.engine().kind(), tc::EngineKind::Fp32);
}

TEST(Context, StageTimerAccumulatesByName) {
  tc::Fp32Engine eng;
  Context ctx(eng);
  { StageTimer t(ctx.telemetry(), "stage.a"); }
  { StageTimer t(ctx.telemetry(), "stage.a"); }
  { StageTimer t(ctx.telemetry(), "stage.b"); }
  const auto& stages = ctx.telemetry().stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(ctx.telemetry().stages()[0].calls, 2);
  EXPECT_GE(ctx.telemetry().stage_seconds("stage.a"), 0.0);
  EXPECT_EQ(ctx.telemetry().stage_seconds("stage.nope"), 0.0);
}

// The allocation-regression guarantee of the refactor: a second evd::solve
// of the same shape on the same Context must not grow the arena at all —
// no new blocks, no spills — regardless of how accurate workspace_query is.
TEST(Workspace, SteadyStateEvdSolveReusesArena) {
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 4242);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  opt.solver = evd::TriSolver::Bisection;  // exercises the arena-heavy path

  auto r1 = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(r1.converged);
  const std::size_t blocks = ctx.workspace().block_count();
  const long spills = ctx.workspace().spill_count();
  const std::size_t hwm = ctx.workspace().high_water_mark();
  EXPECT_EQ(ctx.workspace().bytes_in_use(), 0u);  // every scope closed

  auto r2 = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(ctx.workspace().block_count(), blocks) << "second solve grew the arena";
  EXPECT_EQ(ctx.workspace().spill_count(), spills) << "second solve spilled";
  EXPECT_EQ(ctx.workspace().high_water_mark(), hwm) << "second solve peaked higher";
  EXPECT_EQ(ctx.workspace().bytes_in_use(), 0u);

  // Same eigenvalues both times (the arena is state-free across solves).
  for (std::size_t i = 0; i < r1.eigenvalues.size(); ++i)
    EXPECT_EQ(r1.eigenvalues[i], r2.eigenvalues[i]);
}

// solve_many's steady-state contract: a Context reused across a 16-problem
// batch (different matrices, same shape) must rewind the arena to its
// reserved high-water mark between iterations — zero new blocks, zero
// re-spills, stable peak after the first problem — not pay per-problem
// growth. This is the regression guard for the batched driver's "one
// pre-reserved Context per worker" design.
TEST(Workspace, SteadyStateHoldsAcrossSixteenProblemBatch) {
  const index_t n = 72;
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;

  std::size_t blocks = 0, hwm = 0;
  long spills = 0;
  for (int i = 0; i < 16; ++i) {
    auto a = test::random_symmetric<float>(n, 31337 + i);
    auto res = *evd::solve(a.view(), ctx, opt);
    ASSERT_TRUE(res.converged) << "problem " << i;
    EXPECT_EQ(ctx.workspace().bytes_in_use(), 0u) << "problem " << i;
    if (i == 0) {
      blocks = ctx.workspace().block_count();
      spills = ctx.workspace().spill_count();
      hwm = ctx.workspace().high_water_mark();
    } else {
      EXPECT_EQ(ctx.workspace().block_count(), blocks) << "problem " << i << " grew the arena";
      EXPECT_EQ(ctx.workspace().spill_count(), spills) << "problem " << i << " re-spilled";
      EXPECT_EQ(ctx.workspace().high_water_mark(), hwm) << "problem " << i << " peaked higher";
    }
  }
}

// An idle-but-fragmented arena (spills left several too-small blocks)
// consolidates on the next reserve() instead of accreting blocks forever:
// afterwards one block covers max(request, observed peak) and the request
// that used to spill fits without growth.
TEST(Workspace, ReserveConsolidatesFragmentedIdleArena) {
  Workspace ws;
  ws.reserve(1 << 12);
  {
    auto scope = ws.scope();
    (void)scope.alloc<float>((std::size_t{2} << 20) / sizeof(float));  // forced spill
  }
  ASSERT_EQ(ws.spill_count(), 1);
  ASSERT_GE(ws.block_count(), 2u);
  const std::size_t hwm = ws.high_water_mark();

  ws.reserve(std::size_t{3} << 20);  // bigger than any existing block
  EXPECT_EQ(ws.block_count(), 1u) << "idle fragmented blocks were not coalesced";
  EXPECT_GE(ws.capacity(), std::max(std::size_t{3} << 20, hwm));
  {
    auto scope = ws.scope();
    (void)scope.alloc<float>((std::size_t{3} << 20) / sizeof(float));
  }
  EXPECT_EQ(ws.spill_count(), 1) << "the consolidated block re-spilled";
}

// The packed GEMM pipeline's allocation guarantee: once the thread-local pack
// buffers are sized and gemm_pool's workers exist (both happen on the first
// call), a steady-state blas::gemm or tc::tc_gemm performs ZERO heap
// allocations — serial or pooled, any trans combination. Pooled dispatch goes
// through ThreadPool::try_broadcast, which allocates nothing by construction.
TEST(Workspace, SteadyStateGemmAndTcGemmAreAllocationFree) {
  using blas::Trans;
  const index_t n = 160;  // 2n^3 ~ 8.2 Mflop: above the pooling floor
  Rng rng(99);
  Matrix<float> a(n, n), b(n, n), c(n, n);
  fill_normal(rng, a.view());
  fill_normal(rng, b.view());

  // Warm-up: sizes the pack buffers, spawns the pool, rounds once.
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.5f, c.view());
  blas::gemm<float>(Trans::Yes, Trans::No, 1.0f, a.view(), b.view(), 0.5f, c.view());
  blas::gemm<float>(Trans::No, Trans::Yes, 1.0f, a.view(), b.view(), 0.5f, c.view());
  blas::gemm<float>(Trans::Yes, Trans::Yes, 1.0f, a.view(), b.view(), 0.5f, c.view());
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.5f, c.view());
  tc::tc_gemm(Trans::Yes, Trans::No, 1.0f, a.view(), b.view(), 0.5f, c.view());
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << (after - before)
                           << " heap allocations in steady-state gemm/tc_gemm calls";
}

// The wavefront bulge chase's steady-state allocation budget must equal the
// serial chase's exactly (the two unavoidable result-vector allocations of
// BulgeResult::d/e and nothing else): progress vector and Q support live in
// the warm workspace arena, lanes fan out through the allocation-free
// try_broadcast, and telemetry stage names are interned on the warm-up call.
TEST(Workspace, SteadyStateWavefrontChaseMatchesSerialAllocations) {
  const index_t n = 128, bw = 8;
  Rng rng(2024);
  Matrix<double> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<double>(a.view(), bw);

  tc::Fp32Engine eng;
  Context ctx(eng);
  ThreadPool pool(3);
  bulge::WavefrontOptions wopt;
  wopt.pool = &pool;

  // Warm-up: sizes the arena, interns the stage names, spins up the pool.
  Matrix<double> warm = a;
  (void)bulge::bulge_chase_wavefront<double>(ctx, warm.view(), bw, nullptr, wopt);
  const std::size_t blocks = ctx.workspace().block_count();
  const long spills = ctx.workspace().spill_count();

  Matrix<double> w1 = a, w2 = a;  // copies made BEFORE the measured window
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  auto r_wave = bulge::bulge_chase_wavefront<double>(ctx, w1.view(), bw, nullptr, wopt);
  const std::uint64_t mid = g_heap_allocs.load(std::memory_order_relaxed);
  auto r_serial = bulge::bulge_chase<double>(w2.view(), bw, nullptr);
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(mid - before, after - mid)
      << "wavefront chase allocated " << (mid - before) << " vs serial " << (after - mid);
  EXPECT_EQ(ctx.workspace().block_count(), blocks) << "steady-state chase grew the arena";
  EXPECT_EQ(ctx.workspace().spill_count(), spills) << "steady-state chase spilled";
  EXPECT_EQ(ctx.workspace().bytes_in_use(), 0u);
  for (std::size_t i = 0; i < r_wave.d.size(); ++i)
    EXPECT_EQ(r_wave.d[i], r_serial.d[i]);
}

TEST(Workspace, WorkspaceQueryCoversEvdSolve) {
  // The lwork-style estimate must be an upper bound on the actual peak, so a
  // caller who pre-reserves it sees zero spills from the very first solve.
  const index_t n = 80;
  auto a = test::random_symmetric<float>(n, 77);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 16;
  opt.vectors = true;
  ctx.workspace().reserve(evd::workspace_query(n, opt));
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(ctx.workspace().spill_count(), 0) << "workspace_query undersized the arena";
  EXPECT_LE(ctx.workspace().high_water_mark(), evd::workspace_query(n, opt));
}

}  // namespace
}  // namespace tcevd
